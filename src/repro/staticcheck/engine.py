"""Rule framework: registry, module model, suppressions, reporters.

The engine is deliberately small: a rule is an object with an ``id``
and either a per-module ``check_module`` hook (AST walk over one file)
or a whole-project ``check_project`` hook (e.g. the import-graph
rules, which need every module at once).  Findings are plain
dataclasses; inline suppressions are honored by line; reporters render
text (one grep-able line per finding) or JSON (stable schema, version
tag).

Exit-code semantics (used by the CLI and CI):

* ``0`` — no unsuppressed findings,
* ``1`` — at least one finding,
* ``2`` — usage or I/O error (unknown rule id, unreadable path).
"""

from __future__ import annotations

import ast
import fnmatch
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

#: Inline suppression syntax:  ``# staticcheck: ignore[RULE-A,RULE-B]``
#: (suppresses the named rules on that line) or the blanket
#: ``# staticcheck: ignore`` (suppresses every rule on that line).
_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*ignore(?:\[([A-Za-z0-9_\-, ]+)\])?")

#: Fixture/override syntax:  ``# staticcheck: module=repro.core.example``
#: pins the dotted module name (and hence the package scope) of a file
#: that does not live under a ``repro/`` source root — used by the test
#: fixtures and usable by out-of-tree scripts that want scoped rules.
#: Honored only within the first few lines (a coding-cookie, so marker
#: text quoted deeper in a file — e.g. in tests — cannot hijack it).
_MODULE_RE = re.compile(r"#\s*staticcheck:\s*module=([A-Za-z0-9_.]+)")
_MODULE_OVERRIDE_MAX_LINE = 5


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = "error"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}")


@dataclass
class ModuleInfo:
    """One parsed source file plus the derived metadata rules need."""

    path: str                      # path as reported in findings
    source: str
    tree: ast.Module
    #: Dotted module name when the file resolves under a ``repro``
    #: source root (or carries a ``# staticcheck: module=`` override),
    #: else None.  ``repro/curves/__init__.py`` → ``repro.curves``.
    module: Optional[str] = None
    #: First component under ``repro`` ("curves", "core", …); the bare
    #: package itself ("repro") for the top-level ``__init__``; None
    #: for files outside the package (tests, scripts).
    package: Optional[str] = None
    #: line number → frozenset of suppressed rule ids, or None for the
    #: blanket ``ignore`` (all rules suppressed on that line).
    suppressions: Dict[int, Optional[FrozenSet[str]]] = field(
        default_factory=dict)

    def suppressed(self, line: int, rule_id: str) -> bool:
        if line not in self.suppressions:
            return False
        ids = self.suppressions[line]
        return ids is None or rule_id in ids


class Rule:
    """Base class: one named check over a single module's AST.

    ``scope`` restricts a rule to modules whose :attr:`ModuleInfo.package`
    is listed; ``None`` applies everywhere (including files outside the
    ``repro`` tree).  Scoped rules never fire on files whose package is
    unknown.
    """

    id: str = ""
    title: str = ""
    scope: Optional[FrozenSet[str]] = None

    def applies_to(self, module: ModuleInfo) -> bool:
        if self.scope is None:
            return True
        return module.package is not None and module.package in self.scope

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()


class ProjectRule(Rule):
    """A rule that needs the whole module set (import-graph checks)."""

    def check_project(self,
                      modules: Sequence[ModuleInfo]) -> Iterable[Finding]:
        return ()


_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (stable report order)."""
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


# ----------------------------------------------------------------------
# Module collection and parsing
# ----------------------------------------------------------------------


def _derive_module_name(path: str) -> Optional[str]:
    """Dotted ``repro.*`` module name from a file path, if derivable.

    Uses the right-most ``repro`` path component so checkouts nested
    under directories that happen to be called ``repro`` still resolve.
    """
    parts = os.path.normpath(path).split(os.sep)
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    dotted = parts[idx:]
    if not dotted[-1].endswith(".py"):
        return None
    dotted[-1] = dotted[-1][:-3]
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


def _package_of(module: Optional[str]) -> Optional[str]:
    if module is None or not module.startswith("repro"):
        return None
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else "repro"


def _scan_suppressions(source: str
                       ) -> Dict[int, Optional[FrozenSet[str]]]:
    out: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "staticcheck" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        if match.group(1) is None:
            out[lineno] = None
        else:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",")
                if part.strip())
            # Merge with a prior directive on the same line (rare).
            prior = out.get(lineno, frozenset())
            out[lineno] = None if prior is None else (prior | ids)
    return out


def parse_module(path: str, source: Optional[str] = None,
                 display_path: Optional[str] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises on syntax error)."""
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    tree = ast.parse(source, filename=path)
    module = _derive_module_name(path)
    head = "\n".join(source.splitlines()[:_MODULE_OVERRIDE_MAX_LINE])
    override = _MODULE_RE.search(head)
    if override:
        module = override.group(1)
    return ModuleInfo(
        path=display_path or path,
        source=source,
        tree=tree,
        module=module,
        package=_package_of(module),
        suppressions=_scan_suppressions(source),
    )


def _iter_python_files(root: str) -> Iterable[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d != "__pycache__" and not d.startswith("."))
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _excluded(path: str, patterns: Sequence[str],
              config_root: Optional[str]) -> bool:
    """True when ``path`` matches an exclude glob.

    Patterns are matched against the path relative to the directory
    containing the loaded ``pyproject.toml`` (posix separators), so
    ``tests/staticcheck/fixtures/*`` works from any working directory.
    """
    if not patterns:
        return False
    candidates = {os.path.normpath(path).replace(os.sep, "/")}
    if config_root:
        rel = os.path.relpath(os.path.abspath(path), config_root)
        if not rel.startswith(".."):
            candidates.add(rel.replace(os.sep, "/"))
    for pattern in patterns:
        for candidate in candidates:
            if fnmatch.fnmatch(candidate, pattern):
                return True
    return False


def collect_modules(paths: Sequence[str],
                    exclude: Sequence[str] = (),
                    config_root: Optional[str] = None,
                    ) -> Tuple[List[ModuleInfo], List[Finding]]:
    """Expand ``paths`` to parsed modules.

    Directories are walked recursively (exclude globs apply during the
    walk); a path given *explicitly as a file* is always checked, even
    when an exclude pattern matches it — mirroring the convention of
    mainstream linters, and what lets the test suite point the CLI
    straight at a quarantined fixture.

    Unreadable or syntactically invalid files become ``PARSE-ERROR``
    findings instead of aborting the run.
    """
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []

    def _load(path: str) -> None:
        try:
            modules.append(parse_module(path))
        except SyntaxError as exc:
            errors.append(Finding(
                path=path, line=exc.lineno or 1, col=exc.offset or 0,
                rule_id="PARSE-ERROR",
                message=f"could not parse: {exc.msg}"))
        except OSError as exc:
            errors.append(Finding(
                path=path, line=1, col=0, rule_id="PARSE-ERROR",
                message=f"could not read: {exc}"))

    for path in paths:
        if os.path.isdir(path):
            for file_path in _iter_python_files(path):
                if not _excluded(file_path, exclude, config_root):
                    _load(file_path)
        else:
            _load(path)
    return modules, errors


# ----------------------------------------------------------------------
# The check driver
# ----------------------------------------------------------------------


@dataclass
class CheckResult:
    """Outcome of one analysis run."""

    findings: List[Finding]
    files_checked: int
    rules_run: List[str]

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule_id] = out.get(finding.rule_id, 0) + 1
        return dict(sorted(out.items()))


def run_check(paths: Sequence[str],
              rules: Optional[Sequence[Rule]] = None,
              exclude: Sequence[str] = (),
              config_root: Optional[str] = None) -> CheckResult:
    """Run ``rules`` (default: all registered) over ``paths``."""
    selected = list(rules) if rules is not None else all_rules()
    modules, findings = collect_modules(paths, exclude=exclude,
                                        config_root=config_root)
    for rule in selected:
        for module in modules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check_module(module):
                if not module.suppressed(finding.line, finding.rule_id):
                    findings.append(finding)
        if isinstance(rule, ProjectRule):
            by_path = {m.path: m for m in modules}
            for finding in rule.check_project(modules):
                owner = by_path.get(finding.path)
                if owner is None or not owner.suppressed(finding.line,
                                                         finding.rule_id):
                    findings.append(finding)
    findings.sort()
    return CheckResult(findings=findings, files_checked=len(modules),
                       rules_run=[r.id for r in selected])


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------


def render_text(result: CheckResult) -> str:
    lines = [finding.render() for finding in result.findings]
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(f"{len(result.findings)} {noun} "
                 f"({result.files_checked} files checked)")
    return "\n".join(lines)


#: Bump only on a breaking change to the JSON document shape; tests pin
#: the schema.
JSON_SCHEMA_VERSION = 1


def render_json(result: CheckResult) -> str:
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "counts": result.counts(),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Shared AST helpers used by several rules
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_with_parents(tree: ast.AST):
    """Yield ``(node, parent)`` pairs over the whole tree."""
    stack: List[Tuple[ast.AST, Optional[ast.AST]]] = [(tree, None)]
    while stack:
        node, parent = stack.pop()
        yield node, parent
        for child in ast.iter_child_nodes(node):
            stack.append((child, node))
