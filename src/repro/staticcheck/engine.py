"""Rule framework: registry, module model, two-phase driver, reporters.

Rules come in two shapes.  A per-module :class:`Rule` walks one file's
AST (``check_module``).  A whole-program :class:`ProjectRule` consumes
the merged :class:`~repro.staticcheck.facts.ProjectFacts` base
(``check_project``) — the import-graph rules and the new registry /
async contract passes, which need every file's facts at once.

The driver runs in two phases:

* **Phase 1** — each file is hashed (sha256 of its bytes); a hit in the
  incremental cache (:mod:`repro.staticcheck.cache`) replays the file's
  stored :class:`~repro.staticcheck.facts.FileFacts` and pre-computed
  per-module findings without re-parsing.  Misses are parsed and
  analyzed in a thread pool; every registered module rule runs on a
  miss (not just the selected ones) so a later narrowed run still hits
  the cache.
* **Phase 2** — project rules run over the merged fact base, then the
  engine-level passes: ``SUP-UNUSED`` (suppression comments that no
  longer suppress anything) and the ratchet baseline filter
  (:mod:`repro.staticcheck.baseline`).

Exit-code semantics (used by the CLI and CI):

* ``0`` — no unsuppressed, unbaselined findings,
* ``1`` — at least one finding,
* ``2`` — usage or I/O error (unknown rule id, unreadable path).
"""

from __future__ import annotations

import ast
import concurrent.futures
import fnmatch
import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.staticcheck.facts import FileFacts, ProjectFacts, collect_facts

#: Inline suppression syntax:  ``# staticcheck: ignore[RULE-A,RULE-B]``
#: (suppresses the named rules on that line) or the blanket
#: ``# staticcheck: ignore`` (suppresses every rule on that line).
_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*ignore(?:\[([A-Za-z0-9_\-, ]+)\])?")

#: Fixture/override syntax:  ``# staticcheck: module=repro.core.example``
#: pins the dotted module name (and hence the package scope) of a file
#: that does not live under a ``repro/`` source root — used by the test
#: fixtures and usable by out-of-tree scripts that want scoped rules.
#: Honored only within the first few lines (a coding-cookie, so marker
#: text quoted deeper in a file — e.g. in tests — cannot hijack it).
_MODULE_RE = re.compile(r"#\s*staticcheck:\s*module=([A-Za-z0-9_.]+)")
_MODULE_OVERRIDE_MAX_LINE = 5

#: Thread-pool width for phase-1 cache misses.
_MAX_WORKERS = 8


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = "error"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(path=str(data["path"]), line=int(data["line"]),  # type: ignore[arg-type]
                   col=int(data["col"]),  # type: ignore[arg-type]
                   rule_id=str(data["rule"]),
                   message=str(data["message"]),
                   severity=str(data.get("severity", "error")))

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}")


@dataclass
class ModuleInfo:
    """One parsed source file plus the derived metadata rules need."""

    path: str                      # path as reported in findings
    source: str
    tree: ast.Module
    #: Dotted module name when the file resolves under a ``repro``
    #: source root (or carries a ``# staticcheck: module=`` override),
    #: else None.  ``repro/curves/__init__.py`` → ``repro.curves``.
    module: Optional[str] = None
    #: First component under ``repro`` ("curves", "core", …); the bare
    #: package itself ("repro") for the top-level ``__init__``; None
    #: for files outside the package (tests, scripts).
    package: Optional[str] = None
    #: line number → frozenset of suppressed rule ids, or None for the
    #: blanket ``ignore`` (all rules suppressed on that line).
    suppressions: Dict[int, Optional[FrozenSet[str]]] = field(
        default_factory=dict)

    def suppressed(self, line: int, rule_id: str) -> bool:
        if line not in self.suppressions:
            return False
        ids = self.suppressions[line]
        return ids is None or rule_id in ids

    def facts(self) -> FileFacts:
        """Phase-1 fact summary of this module."""
        return collect_facts(self.tree, self.path, self.module,
                             self.package, self.suppressions)


class Rule:
    """Base class: one named check over a single module's AST.

    ``scope`` restricts a rule to modules whose :attr:`ModuleInfo.package`
    is listed; ``None`` applies everywhere (including files outside the
    ``repro`` tree).  Scoped rules never fire on files whose package is
    unknown.
    """

    id: str = ""
    title: str = ""
    scope: Optional[FrozenSet[str]] = None

    def applies_to(self, module: ModuleInfo) -> bool:
        if self.scope is None:
            return True
        return module.package is not None and module.package in self.scope

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()


class ProjectRule(Rule):
    """A rule that needs the whole-program fact base at once."""

    def check_project(self, project: ProjectFacts) -> Iterable[Finding]:
        return ()


class EnginePass(Rule):
    """Marker for checks implemented inside the driver itself (e.g.
    ``SUP-UNUSED``, which must observe which suppressions fired).  They
    register like any rule so selection, ``--list-rules`` and the
    catalogue stay uniform, but their hooks are no-ops."""


_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (stable report order)."""
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def module_rule_ids() -> List[str]:
    """Ids of the per-module rules (the cacheable phase-1 set)."""
    return [r.id for r in all_rules()
            if not isinstance(r, (ProjectRule, EnginePass))]


# ----------------------------------------------------------------------
# Module collection and parsing
# ----------------------------------------------------------------------


def _derive_module_name(path: str) -> Optional[str]:
    """Dotted ``repro.*`` module name from a file path, if derivable.

    Uses the right-most ``repro`` path component so checkouts nested
    under directories that happen to be called ``repro`` still resolve.
    """
    parts = os.path.normpath(path).split(os.sep)
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    dotted = parts[idx:]
    if not dotted[-1].endswith(".py"):
        return None
    dotted[-1] = dotted[-1][:-3]
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


def _package_of(module: Optional[str]) -> Optional[str]:
    if module is None or not module.startswith("repro"):
        return None
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else "repro"


def _iter_comments(source: str) -> Iterable[Tuple[int, str]]:
    """(line, text) of each real comment token.

    Tokenizing (rather than scanning raw lines) keeps directive text
    quoted inside string literals — test sources quoting examples —
    from registering as live suppressions.  Files that fail to
    tokenize fail ``ast.parse`` too, so losing their tail is moot.
    """
    import io
    import tokenize
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def _scan_suppressions(source: str
                       ) -> Dict[int, Optional[FrozenSet[str]]]:
    out: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, text in _iter_comments(source):
        if "staticcheck" not in text:
            continue
        # Anchored: the comment must *be* the directive, so prose that
        # merely mentions the syntax (docs, rule messages) stays inert.
        match = _SUPPRESS_RE.match(text)
        if not match:
            continue
        if match.group(1) is None:
            out[lineno] = None
        else:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",")
                if part.strip())
            # Merge with a prior directive on the same line (rare).
            prior = out.get(lineno, frozenset())
            out[lineno] = None if prior is None else (prior | ids)
    return out


def parse_module(path: str, source: Optional[str] = None,
                 display_path: Optional[str] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises on syntax error)."""
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    tree = ast.parse(source, filename=path)
    module = _derive_module_name(path)
    head = "\n".join(source.splitlines()[:_MODULE_OVERRIDE_MAX_LINE])
    override = _MODULE_RE.search(head)
    if override:
        module = override.group(1)
    return ModuleInfo(
        path=display_path or path,
        source=source,
        tree=tree,
        module=module,
        package=_package_of(module),
        suppressions=_scan_suppressions(source),
    )


def _iter_python_files(root: str) -> Iterable[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d != "__pycache__" and not d.startswith("."))
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _excluded(path: str, patterns: Sequence[str],
              config_root: Optional[str]) -> bool:
    """True when ``path`` matches an exclude glob.

    Patterns are matched against the path relative to the directory
    containing the loaded ``pyproject.toml`` (posix separators), so
    ``tests/staticcheck/fixtures/*`` works from any working directory.
    """
    if not patterns:
        return False
    candidates = {os.path.normpath(path).replace(os.sep, "/")}
    if config_root:
        rel = os.path.relpath(os.path.abspath(path), config_root)
        if not rel.startswith(".."):
            candidates.add(rel.replace(os.sep, "/"))
    for pattern in patterns:
        for candidate in candidates:
            if fnmatch.fnmatch(candidate, pattern):
                return True
    return False


def expand_paths(paths: Sequence[str],
                 exclude: Sequence[str] = (),
                 config_root: Optional[str] = None) -> List[str]:
    """Expand directories to their python files (exclude globs apply
    during the walk); a path given *explicitly as a file* is always
    included, even when an exclude pattern matches it — mirroring the
    convention of mainstream linters, and what lets the test suite
    point the CLI straight at a quarantined fixture."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for file_path in _iter_python_files(path):
                if not _excluded(file_path, exclude, config_root):
                    out.append(file_path)
        else:
            out.append(path)
    return out


def collect_modules(paths: Sequence[str],
                    exclude: Sequence[str] = (),
                    config_root: Optional[str] = None,
                    ) -> Tuple[List[ModuleInfo], List[Finding]]:
    """Expand ``paths`` to parsed modules.

    Unreadable or syntactically invalid files become ``PARSE-ERROR``
    findings instead of aborting the run.
    """
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []
    for path in expand_paths(paths, exclude, config_root):
        try:
            modules.append(parse_module(path))
        except SyntaxError as exc:
            errors.append(Finding(
                path=path, line=exc.lineno or 1, col=exc.offset or 0,
                rule_id="PARSE-ERROR",
                message=f"could not parse: {exc.msg}"))
        except OSError as exc:
            errors.append(Finding(
                path=path, line=1, col=0, rule_id="PARSE-ERROR",
                message=f"could not read: {exc}"))
    return modules, errors


# ----------------------------------------------------------------------
# Phase 1: per-file analysis (cacheable unit)
# ----------------------------------------------------------------------


@dataclass
class FileAnalysis:
    """Everything phase 2 needs from one file: its facts plus the
    pre-suppression findings of *every* per-module rule (keyed by rule
    id, so narrowed runs replay from cache too)."""

    path: str                                   # display path
    sha256: str
    facts: Optional[FileFacts]                  # None on parse error
    findings: Dict[str, List[Finding]]
    error: Optional[Finding] = None             # PARSE-ERROR
    from_cache: bool = False

    def to_cache_dict(self) -> Dict[str, object]:
        return {
            "sha256": self.sha256,
            "display": self.path,
            "facts": None if self.facts is None else self.facts.to_dict(),
            "findings": {
                rule_id: [f.to_dict() for f in items]
                for rule_id, items in sorted(self.findings.items())},
            "error": None if self.error is None else self.error.to_dict(),
        }

    @classmethod
    def from_cache_dict(cls, data: Dict[str, object]) -> "FileAnalysis":
        facts_data = data.get("facts")
        error_data = data.get("error")
        return cls(
            path=str(data["display"]),
            sha256=str(data["sha256"]),
            facts=(None if facts_data is None
                   else FileFacts.from_dict(facts_data)),  # type: ignore[arg-type]
            findings={
                rule_id: [Finding.from_dict(f) for f in items]
                for rule_id, items
                in data.get("findings", {}).items()},  # type: ignore[union-attr]
            error=(None if error_data is None
                   else Finding.from_dict(error_data)),  # type: ignore[arg-type]
            from_cache=True,
        )


def file_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def analyze_file(path: str, source: Optional[str] = None,
                 digest: Optional[str] = None) -> FileAnalysis:
    """Parse one file, collect facts, run every per-module rule."""
    if source is None:
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            return FileAnalysis(
                path=path, sha256="", facts=None, findings={},
                error=Finding(path=path, line=1, col=0,
                              rule_id="PARSE-ERROR",
                              message=f"could not read: {exc}"))
        digest = file_digest(raw)
        try:
            source = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            return FileAnalysis(
                path=path, sha256=digest, facts=None, findings={},
                error=Finding(path=path, line=1, col=0,
                              rule_id="PARSE-ERROR",
                              message=f"could not decode: {exc}"))
    elif digest is None:
        digest = file_digest(source.encode("utf-8"))
    try:
        module = parse_module(path, source=source)
    except SyntaxError as exc:
        return FileAnalysis(
            path=path, sha256=digest, facts=None, findings={},
            error=Finding(path=path, line=exc.lineno or 1,
                          col=exc.offset or 0, rule_id="PARSE-ERROR",
                          message=f"could not parse: {exc.msg}"))
    findings: Dict[str, List[Finding]] = {}
    for rule in all_rules():
        if isinstance(rule, (ProjectRule, EnginePass)):
            continue
        if not rule.applies_to(module):
            continue
        found = list(rule.check_module(module))
        if found:
            findings[rule.id] = sorted(found)
    return FileAnalysis(path=path, sha256=digest, facts=module.facts(),
                        findings=findings)


def _analyze_files(files: Sequence[str],
                   cache: Optional["Cache"],
                   ) -> Tuple[List[FileAnalysis], int, int]:
    """Phase 1 over all files: cache replay for clean hits, thread-pool
    parse/analyze for the misses.  Deterministic output order."""
    hits: Dict[str, FileAnalysis] = {}
    misses: List[str] = []
    for path in files:
        entry = cache.lookup(path) if cache is not None else None
        if entry is not None:
            hits[path] = entry
        else:
            misses.append(path)
    analyzed: Dict[str, FileAnalysis] = {}
    if misses:
        workers = min(_MAX_WORKERS, max(1, len(misses)),
                      os.cpu_count() or 1)
        if workers > 1:
            with concurrent.futures.ThreadPoolExecutor(
                    max_workers=workers) as pool:
                for analysis in pool.map(analyze_file, misses):
                    analyzed[analysis.path] = analysis
        else:
            for path in misses:
                analysis = analyze_file(path)
                analyzed[analysis.path] = analysis
    ordered: List[FileAnalysis] = []
    for path in files:
        ordered.append(hits.get(path) or analyzed[path])
    return ordered, len(hits), len(misses)


# ----------------------------------------------------------------------
# The check driver
# ----------------------------------------------------------------------


@dataclass
class CheckResult:
    """Outcome of one analysis run."""

    findings: List[Finding]
    files_checked: int
    rules_run: List[str]
    cache_hits: int = 0
    cache_misses: int = 0
    #: Findings filtered out by the ratchet baseline.
    baselined: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule_id] = out.get(finding.rule_id, 0) + 1
        return dict(sorted(out.items()))


def _suppression_pass(analyses: Sequence[FileAnalysis],
                      selected_ids: Set[str],
                      used: Set[Tuple[str, int]]) -> List[Finding]:
    """``SUP-UNUSED``: ignore directives that suppressed nothing.

    A *named* directive is judged stale when it names an unknown rule
    id, or when every id it names was in this run's selected set and
    none fired.  A *blanket* directive is judged only when the full
    rule set ran.  Directives that name ``SUP-UNUSED`` itself opt out.
    """
    registered = set(_REGISTRY)
    full_run = registered <= selected_ids
    findings: List[Finding] = []
    for analysis in analyses:
        if analysis.facts is None:
            continue
        for line, ids in sorted(analysis.facts.suppressions.items()):
            if (analysis.path, line) in used:
                continue
            if ids is not None and "SUP-UNUSED" in ids:
                continue
            if ids is None:
                if not full_run:
                    continue
                message = ("blanket '# staticcheck: ignore' suppresses "
                           "nothing on this line — remove it")
            else:
                unknown = sorted(ids - registered)
                if unknown:
                    message = (f"suppression names unknown rule id(s) "
                               f"{', '.join(unknown)} — remove or fix "
                               f"the directive")
                elif ids <= selected_ids:
                    message = (f"suppression for "
                               f"{', '.join(sorted(ids))} no longer "
                               f"matches any finding — remove it")
                else:
                    continue
            findings.append(Finding(
                path=analysis.path, line=line, col=0,
                rule_id="SUP-UNUSED", message=message))
    return findings


def run_check(paths: Sequence[str],
              rules: Optional[Sequence[Rule]] = None,
              exclude: Sequence[str] = (),
              config_root: Optional[str] = None,
              cache_path: Optional[str] = None,
              baseline_path: Optional[str] = None) -> CheckResult:
    """Run ``rules`` (default: all registered) over ``paths``.

    ``cache_path`` enables the incremental fact cache (off by default
    at the library level; the CLI turns it on).  ``baseline_path``
    filters findings recorded in the ratchet baseline.
    """
    from repro.staticcheck.cache import Cache  # deferred: avoid cycle
    selected = list(rules) if rules is not None else all_rules()
    selected_ids = {r.id for r in selected}

    files = expand_paths(paths, exclude, config_root)
    cache = Cache.load(cache_path) if cache_path else None
    analyses, cache_hits, cache_misses = _analyze_files(files, cache)
    if cache is not None:
        cache.update(analyses)
        cache.save()

    findings: List[Finding] = []
    used: Set[Tuple[str, int]] = set()

    def _admit(finding: Finding,
               facts: Optional[FileFacts]) -> None:
        if facts is not None and facts.suppressed(finding.line,
                                                  finding.rule_id):
            used.add((finding.path, finding.line))
            return
        findings.append(finding)

    fact_list: List[FileFacts] = []
    for analysis in analyses:
        if analysis.error is not None:
            findings.append(analysis.error)
        if analysis.facts is None:
            continue
        fact_list.append(analysis.facts)
        for rule_id in sorted(analysis.findings):
            if rule_id not in selected_ids:
                continue
            for finding in analysis.findings[rule_id]:
                _admit(finding, analysis.facts)

    project = ProjectFacts(fact_list)
    for rule in selected:
        if not isinstance(rule, ProjectRule):
            continue
        for finding in sorted(rule.check_project(project)):
            _admit(finding, project.by_path.get(finding.path))

    if "SUP-UNUSED" in selected_ids:
        for finding in _suppression_pass(analyses, selected_ids, used):
            facts = project.by_path.get(finding.path)
            # A directive naming SUP-UNUSED opted out above; the blanket
            # form is exactly what is being reported, so it cannot
            # re-suppress its own finding.
            if facts is not None:
                ids = facts.suppressions.get(finding.line)
                if ids is not None and "SUP-UNUSED" in ids:
                    continue
            findings.append(finding)

    baselined = 0
    if baseline_path:
        from repro.staticcheck.baseline import Baseline
        baseline = Baseline.load(baseline_path)
        findings, baselined = baseline.filter(findings, config_root)

    findings.sort()
    return CheckResult(findings=findings, files_checked=len(analyses),
                       rules_run=[r.id for r in selected],
                       cache_hits=cache_hits, cache_misses=cache_misses,
                       baselined=baselined)


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------


def render_text(result: CheckResult) -> str:
    lines = [finding.render() for finding in result.findings]
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (f"{len(result.findings)} {noun} "
               f"({result.files_checked} files checked")
    if result.cache_hits or result.cache_misses:
        summary += (f", cache: {result.cache_hits} hit(s) / "
                    f"{result.cache_misses} miss(es)")
    if result.baselined:
        summary += f", {result.baselined} baselined"
    summary += ")"
    lines.append(summary)
    return "\n".join(lines)


#: Bump only on a breaking change to the JSON document shape; tests pin
#: the schema.  v2 added "cache" and "baselined".
JSON_SCHEMA_VERSION = 2


def render_json(result: CheckResult) -> str:
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "counts": result.counts(),
        "cache": {"hits": result.cache_hits,
                  "misses": result.cache_misses},
        "baselined": result.baselined,
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Shared AST helpers used by several rules
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_with_parents(tree: ast.AST):
    """Yield ``(node, parent)`` pairs over the whole tree."""
    stack: List[Tuple[ast.AST, Optional[ast.AST]]] = [(tree, None)]
    while stack:
        node, parent = stack.pop()
        yield node, parent
        for child in ast.iter_child_nodes(node):
            stack.append((child, node))
