"""The one-call public API: :func:`repro.optimize`.

The library grew several ways to run the engine — a bare ``merlin()``
call, the multi-start parallel driver, and the cached batch service —
each with its own argument and result shapes.  ``optimize()`` routes all
of them through one signature and returns one result type, so casual
users never touch the per-path drivers:

* default — one deterministic MERLIN run (identical, bit for bit, to
  calling :func:`repro.core.merlin.merlin` yourself);
* ``multi_start=K`` (or an explicit ``seeds`` sequence) — restart from
  several initial orders via :mod:`repro.parallel`, keep the best tree;
* ``service=...`` — route through a long-lived
  :class:`repro.service.OptimizationService`, getting its canonical-net
  cache and warm worker pool.

The per-path drivers remain public for power users; this facade is the
front door, not a replacement.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence

if TYPE_CHECKING:  # annotation only — keep `import repro` lean
    from repro.service.engine import OptimizationService

from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.core.objective import Objective
from repro.net import Net
from repro.orders.order import Order
from repro.resilience.errors import MerlinInputError, error_from_record
from repro.routing.evaluate import evaluate_tree
from repro.routing.export import tree_signature
from repro.routing.tree import RoutingTree
from repro.tech.technology import Technology, default_technology


@dataclass
class OptimizeOutcome:
    """The unified answer of :func:`optimize`, whichever path ran."""

    #: The chosen routing tree (best across starts when multi-starting).
    tree: RoutingTree
    #: Deterministic topology fingerprint (``routing.export``).
    signature: str
    #: Objective scalar of the winning solution (lower is better).
    cost: float
    #: Outer-loop iterations of the winning run.
    iterations: int
    converged: bool
    #: Which path produced this: "merlin", "multi_start", or "service";
    #: service answers that skipped the DP report "service-cache".
    source: str
    #: True iff the answer came out of the service's canonical-net cache.
    cached: bool = False
    #: True iff a compute budget forced the degradation ladder to a
    #: fallback rung (service path only; always a valid tree).
    degraded: bool = False
    #: Elmore evaluation of :attr:`tree` as plain data (JSON-ready).
    evaluation: Dict[str, Any] = field(default_factory=dict, repr=False)


def optimize(net: Net, tech: Optional[Technology] = None,
             config: Optional[MerlinConfig] = None, *,
             objective: Optional[Objective] = None,
             initial_order: Optional[Order] = None,
             multi_start: Optional[int] = None,
             seeds: Optional[Sequence[Optional[int]]] = None,
             workers: Optional[int] = None,
             service: Optional["OptimizationService"] = None,
             timeout_s: Optional[float] = None) -> OptimizeOutcome:
    """Optimize one net; see the module docstring for path selection.

    Parameters beyond the common three are path-specific and mutually
    independent:

    ``multi_start`` / ``seeds``
        Multi-start path.  ``multi_start=K`` runs the TSP order plus
        ``K-1`` seeded shuffles; ``seeds`` names the starts explicitly
        (``None`` entry = TSP order).  ``workers`` fans the starts
        across processes (default: ``config.workers``).
    ``service``
        Cached-service path: delegates to
        :meth:`repro.service.OptimizationService.optimize`, using the
        service's own technology/config/objective (passing a conflicting
        ``tech``/``config``/``objective`` here is an error — the cache
        key is the service's configuration).  ``timeout_s`` bounds the
        job.
    ``initial_order``
        Single-run path only: override the TSP initial order.
    """
    if service is not None:
        if tech is not None or config is not None or objective is not None:
            raise MerlinInputError(
                "optimize(service=...) uses the service's own tech/config/"
                "objective; configure the OptimizationService instead")
        if multi_start is not None or seeds is not None \
                or initial_order is not None:
            raise MerlinInputError(
                "multi_start/seeds/initial_order do not apply to the "
                "service path")
        result = service.optimize(net, timeout_s=timeout_s)
        if not result.ok:
            # Re-raise as the taxonomy kind the service recorded, so
            # callers can distinguish bad input from resource exhaustion
            # from engine bugs (each base also subclasses ValueError or
            # RuntimeError, so pre-taxonomy handlers keep working).
            record = result.error_record
            assert record is not None
            record = replace(
                record,
                stage=record.stage or "service",
                message=f"service optimization of net {net.name!r} "
                        f"failed: {record.message}")
            raise error_from_record(record)
        return OptimizeOutcome(
            tree=result.tree,
            signature=result.signature,
            cost=result.cost,
            iterations=result.iterations,
            converged=result.converged,
            source="service-cache" if result.cached else "service",
            cached=result.cached,
            degraded=result.degraded,
            evaluation=dict(result.evaluation or {}),
        )

    tech = tech or default_technology()
    config = config or MerlinConfig()
    objective = objective or Objective.max_required_time()

    if multi_start is not None or seeds is not None:
        from repro import parallel

        if initial_order is not None:
            raise MerlinInputError(
                "initial_order conflicts with multi_start/seeds (the "
                "starts *are* the initial orders)")
        if seeds is None:
            if multi_start < 1:
                raise MerlinInputError("multi_start must be >= 1")
            seeds = [None] + list(range(1, multi_start))
        outcome = parallel.run_multi_start(net, tech, config=config,
                                           objective=objective, seeds=seeds,
                                           workers=workers)
        best = outcome.best
        return OptimizeOutcome(
            tree=best.tree,
            signature=best.signature,
            cost=best.cost,
            iterations=best.iterations,
            converged=best.converged,
            source="multi_start",
            evaluation=_evaluation(best.tree, tech),
        )

    result = merlin(net, tech, config=config, objective=objective,
                    initial_order=initial_order)
    return OptimizeOutcome(
        tree=result.tree,
        signature=tree_signature(result.tree),
        cost=objective.cost(result.best.solution),
        iterations=result.iterations,
        converged=result.converged,
        source="merlin",
        evaluation=_evaluation(result.tree, tech),
    )


def _evaluation(tree: RoutingTree, tech: Technology) -> Dict[str, Any]:
    from repro.routing.export import evaluation_to_dict

    return evaluation_to_dict(evaluate_tree(tree, tech))
