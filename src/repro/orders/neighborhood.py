"""The order neighborhood N(Π) (Definition 4) and its combinatorics.

``Π' ∈ N(Π)`` iff every sink's position differs by at most one between the
two orders.  Lemma 4: every such neighbor is Π with a set of disjoint
adjacent transpositions applied.  Theorem 1: ``|N(Π)| = F(n+2)`` where F is
the Fibonacci sequence (the closed form in the paper is Binet's formula) —
exponential in n, which is why BUBBLE_CONSTRUCT's polynomial-time coverage
of the whole neighborhood matters.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.orders.order import Order


def fibonacci(k: int) -> int:
    """Return F(k) with F(1) = F(2) = 1 (exact integer arithmetic)."""
    if k < 0:
        raise ValueError("fibonacci index must be non-negative")
    a, b = 0, 1
    for _ in range(k):
        a, b = b, a + b
    return a


def neighborhood_size(n: int) -> int:
    """Exact |N(Π)| for an order on ``n`` sinks: the Fibonacci number F(n+1).

    Derivation: a neighbor either leaves position 1 fixed (``size(n-1)``
    ways for the rest) or swaps positions 1 and 2 (``size(n-2)`` ways) —
    the Fibonacci recurrence with ``size(1) = 1`` and ``size(2) = 2``,
    i.e. ``F(n+1)`` in the standard ``F(1) = F(2) = 1`` indexing.

    The paper's Theorem 1 states Binet's closed form with exponent ``n+2``,
    i.e. ``F(n+2)``, which over-counts by one Fibonacci index (for n = 2
    only the identity and the single swap exist: 2 orders, yet
    ``F(4) = 3``).  Exhaustive enumeration — the ground truth the unit
    tests pin — confirms ``F(n+1)``; :func:`paper_theorem1_value` exposes
    the paper's stated value for comparison in the experiment reports.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return fibonacci(n + 1)


def paper_theorem1_value(n: int) -> int:
    """The value Theorem 1 of the paper literally states: F(n+2)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return fibonacci(n + 2)


def enumerate_neighborhood(order: Order) -> Iterator[Order]:
    """Yield every Π' ∈ N(Π), including Π itself (exponential; tests only).

    Enumerates all sets of non-overlapping adjacent swap positions via a
    linear recursion — exactly the Lemma 4 decomposition.
    """
    n = len(order)

    def rec(position: int, current: Order) -> Iterator[Order]:
        if position >= n - 1:
            yield current
            return
        # Leave `position` fixed.
        yield from rec(position + 1, current)
        # Swap (position, position+1); the swap consumes both slots.
        yield from rec(position + 2, current.swapped(position))

    yield from rec(0, order)


def in_neighborhood(candidate: Order, center: Order) -> bool:
    """Definition 4 membership test: every displacement is at most one."""
    return all(d <= 1 for d in candidate.displacement_from(center))


def swap_decomposition(candidate: Order, center: Order) -> Optional[List[int]]:
    """Lemma 4: decompose ``candidate`` into disjoint swaps of ``center``.

    Returns the sorted list of swap positions (0-based, each swapping
    positions p and p+1 of ``center``), or None when ``candidate`` is not
    in ``N(center)``.
    """
    if len(candidate) != len(center):
        return None
    swaps: List[int] = []
    position = 0
    n = len(center)
    while position < n:
        if candidate[position] == center[position]:
            position += 1
            continue
        if (position + 1 < n
                and candidate[position] == center[position + 1]
                and candidate[position + 1] == center[position]):
            swaps.append(position)
            position += 2
            continue
        return None
    return swaps
