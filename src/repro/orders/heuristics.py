"""Non-TSP initial-order heuristics.

``required_time_order`` is what the Flow I setup feeds LTTREE ("the sink
order for the LTTREE phase is based on the required times of sinks");
``projection_order`` and ``random_order`` support the initial-order
sensitivity ablation (E4) — the paper reports MERLIN's result barely
depends on the seed order, and the ablation reproduces that claim.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net import Net
from repro.orders.order import Order


def required_time_order(net: Net) -> Order:
    """Sinks by ascending required time (most critical first).

    LT-Tree construction wants critical sinks near the root end of the
    order; ties break on descending load then index for determinism.
    """
    ranked = sorted(
        range(len(net.sinks)),
        key=lambda i: (net.sink(i).required_time, -net.sink(i).load, i),
    )
    return Order.from_sequence(ranked)


def projection_order(net: Net, axis: str = "x") -> Order:
    """Sinks by their coordinate along ``axis`` ("x" or "y").

    A crude geometric order — useful as a deliberately mediocre seed for
    the sensitivity ablation.
    """
    if axis not in ("x", "y"):
        raise ValueError("axis must be 'x' or 'y'")
    key = (lambda i: (net.sink(i).position.x, net.sink(i).position.y, i)) \
        if axis == "x" else \
        (lambda i: (net.sink(i).position.y, net.sink(i).position.x, i))
    return Order.from_sequence(sorted(range(len(net.sinks)), key=key))


def random_order(net: Net, seed: Optional[int] = None) -> Order:
    """A uniformly random order (seeded for reproducibility)."""
    rng = random.Random(seed)
    seq = list(range(len(net.sinks)))
    rng.shuffle(seq)
    return Order.from_sequence(seq)
