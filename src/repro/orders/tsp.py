"""TSP-based sink ordering.

[LCLH96] seeds P-Tree construction with the sink order given by a traveling
salesman tour over the sink positions (geometrically close sinks end up
adjacent in the order, which is what a good embedding wants).  The paper
uses the same TSP order as the initial order for all three experimental
flows.  We implement the standard nearest-neighbor construction starting
from the sink closest to the source, improved by 2-opt until convergence —
deterministic and easily good enough for n <= a few hundred.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry.point import Point
from repro.net import Net
from repro.orders.order import Order


def tsp_order(net: Net) -> Order:
    """Return the 2-opt-improved nearest-neighbor tour order of the sinks."""
    positions = [s.position for s in net.sinks]
    if len(positions) == 1:
        return Order.identity(1)
    tour = _nearest_neighbor_tour(net.source, positions)
    tour = _two_opt(tour, positions)
    return Order.from_sequence(tour)


def _nearest_neighbor_tour(source: Point, positions: Sequence[Point]) -> List[int]:
    """Greedy path starting from the sink nearest the source."""
    remaining = set(range(len(positions)))
    current = min(remaining, key=lambda i: source.manhattan_to(positions[i]))
    tour = [current]
    remaining.remove(current)
    while remaining:
        here = positions[tour[-1]]
        nearest = min(remaining,
                      key=lambda i: (here.manhattan_to(positions[i]), i))
        tour.append(nearest)
        remaining.remove(nearest)
    return tour


def _two_opt(tour: List[int], positions: Sequence[Point],
             max_rounds: int = 20) -> List[int]:
    """Classic 2-opt on an open path: reverse segments while that shortens it."""

    def dist(a: int, b: int) -> float:
        return positions[a].manhattan_to(positions[b])

    n = len(tour)
    improved = True
    rounds = 0
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for i in range(n - 2):
            for j in range(i + 2, n):
                # Reversing tour[i+1 .. j] replaces edges (i, i+1) and
                # (j, j+1) with (i, j) and (i+1, j+1); on an open path the
                # (j, j+1) edge does not exist when j is the last stop.
                before = dist(tour[i], tour[i + 1])
                after = dist(tour[i], tour[j])
                if j + 1 < n:
                    before += dist(tour[j], tour[j + 1])
                    after += dist(tour[i + 1], tour[j + 1])
                if after + 1e-12 < before:
                    tour[i + 1:j + 1] = reversed(tour[i + 1:j + 1])
                    improved = True
    return tour
