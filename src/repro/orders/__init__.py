"""Sink orders, their neighborhoods, and initial-order heuristics.

Implements Definitions 3–5 of the paper (orders, the neighborhood ``N(Π)``
of orders whose every element moved at most one position, element swaps),
Lemma 4 (every neighbor decomposes into non-overlapping adjacent swaps) and
Theorem 1 (|N(Π)| is the Fibonacci number F(n+2)), plus the initial-order
heuristics used by the experimental flows: the TSP order of [LCLH96] and a
required-time order for LTTREE.
"""

from repro.orders.order import Order
from repro.orders.neighborhood import (
    neighborhood_size,
    paper_theorem1_value,
    fibonacci,
    enumerate_neighborhood,
    in_neighborhood,
    swap_decomposition,
)
from repro.orders.tsp import tsp_order
from repro.orders.heuristics import (
    required_time_order,
    random_order,
    projection_order,
)

__all__ = [
    "Order",
    "neighborhood_size",
    "paper_theorem1_value",
    "fibonacci",
    "enumerate_neighborhood",
    "in_neighborhood",
    "swap_decomposition",
    "tsp_order",
    "required_time_order",
    "random_order",
    "projection_order",
]
