"""Sink orders (Definition 3).

An order Π on ``n`` sinks is a bijection from sink indices to positions.
Internally an :class:`Order` stores the *sequence* view — ``seq[j]`` is the
sink index occupying position ``j`` — because that is what the DP consumes;
the functional view Π(i) (position of sink i) is available as
:meth:`position_of`.  All indices and positions are 0-based; the paper's
1-based examples map directly by subtracting one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class Order:
    """An immutable permutation of sink indices."""

    seq: Tuple[int, ...]

    def __post_init__(self) -> None:
        if sorted(self.seq) != list(range(len(self.seq))):
            raise ValueError(f"{self.seq} is not a permutation of 0..{len(self.seq) - 1}")

    @classmethod
    def identity(cls, n: int) -> "Order":
        """The order (s_1, s_2, ..., s_n)."""
        if n < 1:
            raise ValueError("an order needs at least one element")
        return cls(tuple(range(n)))

    @classmethod
    def from_sequence(cls, seq: Sequence[int]) -> "Order":
        return cls(tuple(seq))

    def __len__(self) -> int:
        return len(self.seq)

    def __iter__(self) -> Iterator[int]:
        return iter(self.seq)

    def __getitem__(self, position: int) -> int:
        """Return the sink index at ``position`` (0-based)."""
        return self.seq[position]

    def position_of(self, sink_index: int) -> int:
        """Π(i): the position of sink ``sink_index`` (0-based)."""
        return self.seq.index(sink_index)

    @property
    def positions(self) -> Tuple[int, ...]:
        """The functional view: ``positions[i]`` = Π(i)."""
        inverse = [0] * len(self.seq)
        for position, sink in enumerate(self.seq):
            inverse[sink] = position
        return tuple(inverse)

    def swapped(self, position: int) -> "Order":
        """Definition 5: swap the elements at ``position`` and ``position+1``."""
        if not 0 <= position < len(self.seq) - 1:
            raise ValueError(
                f"swap position {position} out of range for n={len(self.seq)}")
        seq = list(self.seq)
        seq[position], seq[position + 1] = seq[position + 1], seq[position]
        return Order(tuple(seq))

    def reversed(self) -> "Order":
        return Order(tuple(reversed(self.seq)))

    def displacement_from(self, other: "Order") -> List[int]:
        """Per-sink |Π(i) - Π'(i)| displacement vector."""
        mine = self.positions
        theirs = other.positions
        if len(mine) != len(theirs):
            raise ValueError("orders have different sizes")
        return [abs(a - b) for a, b in zip(mine, theirs)]
