"""Static timing analysis over a placed netlist.

Forward pass: arrival times propagate from PIs through gates and nets;
backward pass: required times propagate from POs.  Net delays are supplied
by a pluggable ``net_delay`` function so the same STA runs both with crude
pre-optimization estimates (star topology, no buffers) and with the exact
per-sink delays of the optimized buffered routing trees.

Timing convention (consistent with :mod:`repro.routing.evaluate`): a net's
per-sink delay *includes* the driving gate's own delay (computed from the
gate's drive parameters and the net's total load), so gate arrival times
are defined at gate *inputs*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.netlist.netlist import CircuitNet, Gate, Netlist
from repro.tech.technology import Technology

#: Maps (net, sink gate name) -> delay in ps, inclusive of the driver gate.
NetDelayFn = Callable[[CircuitNet, str], float]


@dataclass
class StaResult:
    """Arrival/required times and the derived critical-path report."""

    #: Arrival time (ps) at each gate's input (max over its pins).
    arrival: Dict[str, float]
    #: Required time (ps) at each gate's input.
    required: Dict[str, float]
    #: max over PO arrivals — the circuit delay the experiments report.
    critical_delay: float
    #: The timing target the required times were derived from.
    target: float

    def slack(self, gate_name: str) -> float:
        return self.required[gate_name] - self.arrival[gate_name]

    @property
    def worst_slack(self) -> float:
        return min((self.slack(g) for g in self.arrival), default=0.0)


def star_net_delay(netlist: Netlist, tech: Technology) -> NetDelayFn:
    """Pre-optimization estimate: direct source-to-sink wires, no buffers.

    The driving gate sees the sum of all sink pin caps plus every direct
    wire's capacitance; each sink additionally sees its own wire's Elmore
    delay.  Crude, but exactly what a placement-stage timer would use, and
    sufficient to derive the per-sink required times the optimizing flows
    take as input.
    """

    def delay(net: CircuitNet, sink_name: str) -> float:
        driver = netlist.gates[net.driver]
        total_load = 0.0
        for name in net.sinks:
            sink_gate = netlist.gates[name]
            length = driver.position.manhattan_to(sink_gate.position)
            total_load += sink_gate.cell.input_cap + tech.wire_cap(length)
        gate_delay = tech.driver_delay(
            total_load,
            drive_resistance=driver.cell.drive_resistance,
            intrinsic=driver.cell.intrinsic_delay)
        sink_gate = netlist.gates[sink_name]
        length = driver.position.manhattan_to(sink_gate.position)
        wire = tech.wire_delay(length, sink_gate.cell.input_cap)
        return gate_delay + wire

    return delay


def run_sta(netlist: Netlist, tech: Technology,
            net_delay: Optional[NetDelayFn] = None,
            target: Optional[float] = None) -> StaResult:
    """Run forward/backward STA; see module docstring for conventions.

    ``target`` defaults to the computed critical delay, making the worst
    slack exactly zero — the standard way to expose per-sink criticality
    without an external constraint.
    """
    if net_delay is None:
        net_delay = star_net_delay(netlist, tech)

    order = netlist.topological_gates()
    arrival: Dict[str, float] = {}
    for gate in order:
        fanin = netlist.fanin_nets(gate.name)
        if not fanin:
            arrival[gate.name] = 0.0
            continue
        arrival[gate.name] = max(
            arrival[net.driver] + net_delay(net, gate.name) for net in fanin)

    critical = max((arrival[g.name] for g in netlist.primary_outputs),
                   default=0.0)
    if target is None:
        target = critical

    required: Dict[str, float] = {}
    for gate in reversed(order):
        net = netlist.net_driven_by(gate.name)
        if gate.is_primary_output or net is None:
            required[gate.name] = target
            continue
        required[gate.name] = min(
            required[sink] - net_delay(net, sink) for sink in net.sinks)

    return StaResult(arrival=arrival, required=required,
                     critical_delay=critical, target=target)
