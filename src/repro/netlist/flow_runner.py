"""Apply one experimental flow to every multi-sink net of a circuit.

This is the Table 2 harness core: place the circuit, derive per-sink
required times from a pre-optimization STA (star-topology estimates, zero
worst slack), optimize every multi-sink net with the chosen flow, then
re-run STA with the optimized trees' exact per-sink delays and report the
post-layout circuit delay and area — the quantities the paper's Table 2
tabulates per circuit and flow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.flows import FlowResult, run_flow
from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.net import Net, Sink
from repro.netlist.netlist import CircuitNet, Netlist
from repro.netlist.placement import place_netlist
from repro.netlist.sta import StaResult, run_sta, star_net_delay

@dataclass
class CircuitFlowResult:
    """Post-layout metrics of one circuit optimized with one flow."""

    circuit: str
    flow: str
    #: STA critical delay with the optimized nets' exact delays (ps).
    critical_delay: float
    #: Gate area + inserted buffer area (um^2).
    total_area: float
    buffer_area: float
    runtime_s: float
    nets_optimized: int
    #: Total MERLIN loops across nets (1 per net for sequential flows).
    total_loops: int
    sta: StaResult
    per_net: Dict[str, FlowResult] = field(default_factory=dict)


def run_circuit_flow(netlist: Netlist, flow: str, tech,
                     config: Optional[MerlinConfig] = None,
                     objective: Optional[Objective] = None,
                     min_sinks: int = 2,
                     target_scale: float = 0.88,
                     use_service: bool = False,
                     service=None) -> CircuitFlowResult:
    """Run ``flow`` over every net of ``netlist`` with >= ``min_sinks`` sinks.

    Timing-closure setup: required times are derived from a pre-
    optimization STA whose target is ``target_scale`` times the estimated
    critical delay — the circuit is deliberately over-constrained, the
    standard way to make optimizers *improve* delay rather than merely
    meet it.  When no explicit ``objective`` is given, each net is then
    optimized to *meet its (tightened) timing with minimum buffer area*:
    slack-rich nets get few or no buffers, critical-cone nets cannot meet
    the floor and fall back to their best achievable required time, so
    buffer area concentrates exactly where delay improves.

    ``use_service=True`` routes the per-net MERLIN runs through a
    :class:`repro.service.OptimizationService` batch (warm pool + result
    cache) instead of the in-process loop — bit-identical trees, since
    the service's first ladder rung is the plain engine with the same
    config and per-net objective.  Only ``flow3_merlin`` is served (the
    baseline flows have no service backend).  Pass ``service`` to reuse
    a long-lived instance (its tech/config then apply); otherwise a
    transient one is created for the call.
    """
    from repro.baselines.flows import FLOW_III

    config = config or MerlinConfig()
    if not 0.0 < target_scale <= 1.0:
        raise ValueError("target_scale must be in (0, 1]")
    if (use_service or service is not None) and flow != FLOW_III:
        from repro.resilience.errors import MerlinInputError

        raise MerlinInputError(
            f"use_service only supports {FLOW_III!r} (the service has "
            f"no backend for baseline flow {flow!r})")
    start = time.perf_counter()
    place_netlist(netlist)
    estimate = run_sta(netlist, tech)
    baseline_sta = run_sta(netlist, tech,
                           target=target_scale * estimate.critical_delay)
    star_delay = star_net_delay(netlist, tech)

    selected: List[CircuitNet] = [
        net for net in netlist.nets if len(net.sinks) >= min_sinks]
    jobs = [_to_routing_net(netlist, net, baseline_sta) for net in selected]
    objectives = [
        objective if objective is not None else Objective.min_area(
            required_time_floor=baseline_sta.arrival[net.driver])
        for net in selected]

    per_net: Dict[str, FlowResult] = {}
    total_loops = 0
    if use_service or service is not None:
        for circuit_net, result in zip(selected, _service_flow_results(
                jobs, objectives, tech, config, service)):
            per_net[circuit_net.name] = result
            total_loops += result.loops
    else:
        for circuit_net, net, net_objective in zip(selected, jobs,
                                                   objectives):
            result = run_flow(flow, net, tech, config=config,
                              objective=net_objective)
            per_net[circuit_net.name] = result
            total_loops += result.loops

    def optimized_delay(net: CircuitNet, sink_name: str) -> float:
        result = per_net.get(net.name)
        if result is None:
            return star_delay(net, sink_name)
        sink_index = net.sinks.index(sink_name)
        return result.evaluation.sink_arrivals[sink_index]

    final_sta = run_sta(netlist, tech, net_delay=optimized_delay)
    buffer_area = sum(r.evaluation.buffer_area for r in per_net.values())
    runtime = time.perf_counter() - start
    return CircuitFlowResult(
        circuit=netlist.name,
        flow=flow,
        critical_delay=final_sta.critical_delay,
        total_area=netlist.gate_area + buffer_area,
        buffer_area=buffer_area,
        runtime_s=runtime,
        nets_optimized=len(per_net),
        total_loops=total_loops,
        sta=final_sta,
        per_net=per_net,
    )


def _service_flow_results(jobs: List[Net], objectives: List[Objective],
                          tech, config: MerlinConfig,
                          service) -> List[FlowResult]:
    """Run the MERLIN jobs through the optimization service and wrap the
    answers as :class:`FlowResult` rows (the in-process loop's shape).

    The evaluation is recomputed locally from the returned tree with the
    shared Elmore/gate models — same tree, same numbers — because the
    service ships its evaluation as a JSON-ready dict, and downstream
    consumers of ``CircuitFlowResult.per_net`` expect the dataclass.
    A failed job is raised as its taxonomy error: the circuit harness
    has no per-net fallback story, exactly like the in-process path.
    """
    from repro.baselines.flows import FLOW_III
    from repro.resilience.errors import error_from_record
    from repro.routing.evaluate import evaluate_tree

    def wrap(results) -> List[FlowResult]:
        rows: List[FlowResult] = []
        for net, result in zip(jobs, results):
            if not result.ok:
                raise error_from_record(result.error_record)
            rows.append(FlowResult(
                flow=FLOW_III,
                net=net,
                tree=result.tree,
                evaluation=evaluate_tree(result.tree, tech),
                runtime_s=result.elapsed_s,
                loops=result.iterations or 1,
                extra={"converged": result.converged,
                       "cached": result.cached,
                       "degraded": result.degraded,
                       "service": True},
            ))
        return rows

    if service is not None:
        return wrap(service.optimize_many(jobs, objectives=objectives))
    from repro.service.engine import OptimizationService

    with OptimizationService(tech=tech, config=config) as transient:
        return wrap(transient.optimize_many(jobs, objectives=objectives))


def _to_routing_net(netlist: Netlist, circuit_net: CircuitNet,
                    sta: StaResult) -> Net:
    """Build the per-net optimization problem from circuit context."""
    driver = netlist.gates[circuit_net.driver]
    sinks = []
    for sink_name in circuit_net.sinks:
        gate = netlist.gates[sink_name]
        sinks.append(Sink(
            name=sink_name,
            position=gate.position,
            load=gate.cell.input_cap,
            required_time=sta.required[sink_name],
        ))
    return Net(
        name=circuit_net.name,
        source=driver.position,
        sinks=tuple(sinks),
        driver_resistance=driver.cell.drive_resistance,
        driver_intrinsic=driver.cell.intrinsic_delay,
    )
