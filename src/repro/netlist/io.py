"""Netlist serialization.

A minimal JSON interchange format for combinational netlists (the paper's
flow lived inside SIS; this is the equivalent import/export seam so users
can bring their own circuits to the Table 2 pipeline).

Schema::

    {
      "name": "...",
      "gates": [{"name": "...", "cell": "NAND2",
                 "position": [x, y] | null}, ...],
      "nets":  [{"name": "...", "driver": "...",
                 "sinks": ["...", ...]}, ...]
    }

Cells are resolved against :data:`repro.netlist.netlist.STANDARD_CELLS`;
unknown cell names are rejected rather than guessed.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.geometry.point import Point
from repro.netlist.netlist import (
    STANDARD_CELLS,
    CircuitNet,
    Gate,
    Netlist,
)


def netlist_to_dict(netlist: Netlist) -> Dict[str, Any]:
    """Serialize ``netlist`` (placement included when present)."""
    return {
        "name": netlist.name,
        "gates": [
            {
                "name": gate.name,
                "cell": gate.cell.name,
                "position": (list(gate.position.as_tuple())
                             if gate.position is not None else None),
            }
            for gate in netlist.gates.values()
        ],
        "nets": [
            {"name": net.name, "driver": net.driver,
             "sinks": list(net.sinks)}
            for net in netlist.nets
        ],
    }


def netlist_from_dict(data: Dict[str, Any]) -> Netlist:
    """Deserialize a netlist; validates structure via Netlist itself."""
    gates = []
    for entry in data["gates"]:
        cell_name = entry["cell"]
        if cell_name not in STANDARD_CELLS:
            raise ValueError(f"unknown cell type: {cell_name!r}")
        position = entry.get("position")
        gates.append(Gate(
            name=entry["name"],
            cell=STANDARD_CELLS[cell_name],
            position=Point(*position) if position is not None else None,
        ))
    nets = [
        CircuitNet(name=entry["name"], driver=entry["driver"],
                   sinks=tuple(entry["sinks"]))
        for entry in data["nets"]
    ]
    return Netlist(data["name"], gates, nets)


def save_netlist(netlist: Netlist, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(netlist_to_dict(netlist), handle, indent=2)


def load_netlist(path: str) -> Netlist:
    with open(path, "r", encoding="utf-8") as handle:
        return netlist_from_dict(json.load(handle))
