"""Deterministic grid placement for synthetic netlists.

Gates are placed column-by-column in topological-level order (the classic
datapath layout): PIs on the left edge, POs on the right, logic levels in
between.  Row positions are level-locally shuffled with the netlist's name
as seed so nets span realistic vertical distances.  The column pitch is
chosen so that a typical multi-sink net's bounding box makes its
interconnect delay comparable to a gate delay — the same sizing rule the
paper applies to its Table 1 nets.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro import units
from repro.geometry.point import Point
from repro.netlist.netlist import Gate, Netlist


def place_netlist(netlist: Netlist,
                  column_pitch: float = units.GATE_EQUIVALENT_BOX_SIDE / 3.0,
                  row_pitch: float = units.GATE_EQUIVALENT_BOX_SIDE / 8.0,
                  ) -> Netlist:
    """Assign a position to every gate (in place); returns the netlist."""
    levels = _levelize(netlist)
    by_level: Dict[int, List[Gate]] = {}
    for gate in netlist.gates.values():
        by_level.setdefault(levels[gate.name], []).append(gate)

    import zlib

    # crc32, not hash(): the built-in is randomized per process and would
    # break cross-run placement determinism.
    rng = random.Random(zlib.crc32(netlist.name.encode()) & 0xFFFFFFFF)
    for level in sorted(by_level):
        column = by_level[level]
        column.sort(key=lambda g: g.name)
        rows = list(range(len(column)))
        rng.shuffle(rows)
        for gate, row in zip(column, rows):
            gate.position = Point(level * column_pitch, row * row_pitch)
    return netlist


def _levelize(netlist: Netlist) -> Dict[str, int]:
    """Longest-path level of every gate (PIs at 0)."""
    levels: Dict[str, int] = {}
    for gate in netlist.topological_gates():
        fanin = netlist.fanin_nets(gate.name)
        if not fanin:
            levels[gate.name] = 0
        else:
            levels[gate.name] = 1 + max(levels[net.driver] for net in fanin)
    return levels
