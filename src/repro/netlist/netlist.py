"""The gate-level netlist intermediate representation.

A :class:`Netlist` is a DAG of :class:`Gate` instances connected by
:class:`CircuitNet` objects; primary inputs and outputs are modelled as
pseudo-gates so the timing graph is uniform.  Combinational only — the
paper's benchmarks are combinational ISCAS-85/MCNC circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.point import Point


@dataclass(frozen=True)
class CellType:
    """A combinational standard cell.

    Delay is the same affine-in-load form used for buffers; per-input
    capacitance is uniform across pins (adequate for synthetic circuits).
    """

    name: str
    inputs: int
    input_cap: float          # fF per input pin
    drive_resistance: float   # kOhm
    intrinsic_delay: float    # ps
    area: float               # um^2

    def __post_init__(self) -> None:
        if self.inputs < 0:
            raise ValueError(f"{self.name}: inputs must be >= 0")
        if self.input_cap < 0 or self.drive_resistance < 0:
            raise ValueError(f"{self.name}: electrical params must be >= 0")


#: A small synthetic standard-cell set with 0.35um-flavored magnitudes.
STANDARD_CELLS: Dict[str, CellType] = {
    cell.name: cell
    for cell in (
        CellType("INV", 1, input_cap=3.0, drive_resistance=6.5,
                 intrinsic_delay=22.0, area=20.0),
        CellType("NAND2", 2, input_cap=4.2, drive_resistance=7.8,
                 intrinsic_delay=34.0, area=32.0),
        CellType("NOR2", 2, input_cap=4.6, drive_resistance=8.6,
                 intrinsic_delay=38.0, area=32.0),
        CellType("NAND3", 3, input_cap=5.1, drive_resistance=9.0,
                 intrinsic_delay=46.0, area=44.0),
        CellType("AOI22", 4, input_cap=5.6, drive_resistance=9.8,
                 intrinsic_delay=55.0, area=58.0),
        CellType("XOR2", 2, input_cap=6.4, drive_resistance=9.2,
                 intrinsic_delay=62.0, area=66.0),
        # Pseudo-cells for the netlist boundary.
        CellType("__PI", 0, input_cap=1.0, drive_resistance=2.0,
                 intrinsic_delay=0.0, area=1.0),
        CellType("__PO", 1, input_cap=9.0, drive_resistance=1.0,
                 intrinsic_delay=0.0, area=1.0),
    )
}


@dataclass
class Gate:
    """One placed cell instance (or a PI/PO pseudo-gate)."""

    name: str
    cell: CellType
    position: Optional[Point] = None

    @property
    def is_primary_input(self) -> bool:
        return self.cell.name == "__PI"

    @property
    def is_primary_output(self) -> bool:
        return self.cell.name == "__PO"


@dataclass
class CircuitNet:
    """A net: one driving gate and one or more sink gates.

    ``sinks`` entries are gate names; each connection uses one input pin of
    the sink gate (pin identity does not matter for timing here because
    per-pin caps are uniform).
    """

    name: str
    driver: str
    sinks: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError(f"net {self.name}: must have at least one sink")
        if self.driver in self.sinks:
            raise ValueError(f"net {self.name}: combinational self-loop")


class Netlist:
    """A combinational netlist: gates plus driver-to-sinks nets."""

    def __init__(self, name: str, gates: Sequence[Gate],
                 nets: Sequence[CircuitNet]):
        self.name = name
        self.gates: Dict[str, Gate] = {}
        for gate in gates:
            if gate.name in self.gates:
                raise ValueError(f"duplicate gate name: {gate.name}")
            self.gates[gate.name] = gate
        self.nets: List[CircuitNet] = list(nets)
        self._validate()
        self._driver_net: Dict[str, CircuitNet] = {
            net.driver: net for net in self.nets}
        self._fanin: Dict[str, List[CircuitNet]] = {g: [] for g in self.gates}
        for net in self.nets:
            for sink in net.sinks:
                self._fanin[sink].append(net)

    def _validate(self) -> None:
        drivers = [net.driver for net in self.nets]
        if len(set(drivers)) != len(drivers):
            raise ValueError("a gate drives more than one net")
        for net in self.nets:
            if net.driver not in self.gates:
                raise ValueError(f"net {net.name}: unknown driver {net.driver}")
            for sink in net.sinks:
                if sink not in self.gates:
                    raise ValueError(f"net {net.name}: unknown sink {sink}")
        for gate in self.gates.values():
            fanin = sum(1 for net in self.nets
                        for sink in net.sinks if sink == gate.name)
            if not gate.is_primary_input and fanin == 0:
                raise ValueError(f"gate {gate.name} has no fanin")

    # -- queries ---------------------------------------------------------

    @property
    def primary_inputs(self) -> List[Gate]:
        return [g for g in self.gates.values() if g.is_primary_input]

    @property
    def primary_outputs(self) -> List[Gate]:
        return [g for g in self.gates.values() if g.is_primary_output]

    @property
    def logic_gates(self) -> List[Gate]:
        return [g for g in self.gates.values()
                if not (g.is_primary_input or g.is_primary_output)]

    @property
    def gate_area(self) -> float:
        """Total placed cell area (pseudo-gates contribute ~nothing)."""
        return sum(g.cell.area for g in self.logic_gates)

    def net_driven_by(self, gate_name: str) -> Optional[CircuitNet]:
        return self._driver_net.get(gate_name)

    def fanin_nets(self, gate_name: str) -> List[CircuitNet]:
        return self._fanin[gate_name]

    def topological_gates(self) -> List[Gate]:
        """Gates in topological order (PIs first); raises on cycles."""
        order: List[Gate] = []
        indegree = {name: len(self._fanin[name]) for name in self.gates}
        ready = [name for name, deg in indegree.items() if deg == 0]
        ready.sort()
        while ready:
            name = ready.pop()
            order.append(self.gates[name])
            net = self.net_driven_by(name)
            if net is None:
                continue
            for sink in net.sinks:
                indegree[sink] -= 1
                if indegree[sink] == 0:
                    ready.append(sink)
        if len(order) != len(self.gates):
            raise ValueError("netlist contains a combinational cycle")
        return order
