"""Synthetic combinational circuit generation.

Produces seeded, layered DAG netlists with ISCAS-like shape parameters:
a layer of primary inputs, several logic levels whose gates draw fanin from
the previous few layers, and primary outputs tapping the last layers.
Fanout distributions are skewed (most nets drive 1–3 sinks, a few drive
many), which is what makes the Table 2 experiment meaningful — the flows
only differ on multi-sink nets.

The generator is deterministic in ``(spec, seed)``; the benchmark suite in
:mod:`repro.experiments.circuits` instantiates specs named after the
paper's circuits (C1355, dalu, ...) scaled to pure-Python-friendly sizes.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.netlist.netlist import (
    STANDARD_CELLS,
    CellType,
    CircuitNet,
    Gate,
    Netlist,
)

#: Logic cells eligible for random instantiation (no pseudo-cells).
_LOGIC_CELL_NAMES = ("INV", "NAND2", "NOR2", "NAND3", "AOI22", "XOR2")


@dataclass(frozen=True)
class CircuitSpec:
    """Shape parameters of a synthetic circuit."""

    name: str
    primary_inputs: int = 8
    primary_outputs: int = 6
    logic_gates: int = 40
    levels: int = 6
    #: Maximum sinks on any single net (bounds per-net optimizer cost).
    max_fanout: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.primary_inputs < 1 or self.primary_outputs < 1:
            raise ValueError("need at least one PI and one PO")
        if self.logic_gates < self.levels:
            raise ValueError("need at least one gate per level")
        if self.max_fanout < 1:
            raise ValueError("max_fanout must be >= 1")


def generate_circuit(spec: CircuitSpec) -> Netlist:
    """Generate the netlist described by ``spec`` (deterministic).

    The name is folded into the seed via crc32 — NOT the built-in
    ``hash``, whose per-process randomization would make "deterministic"
    a lie across interpreter runs.
    """
    rng = random.Random(spec.seed ^ (zlib.crc32(spec.name.encode()) & 0xFFFF))
    gates: List[Gate] = []
    #: gate name -> level (PIs at level 0)
    level_of: Dict[str, int] = {}

    for i in range(spec.primary_inputs):
        name = f"pi{i}"
        gates.append(Gate(name, STANDARD_CELLS["__PI"]))
        level_of[name] = 0

    per_level = _split_levels(spec.logic_gates, spec.levels, rng)
    for level, count in enumerate(per_level, start=1):
        for i in range(count):
            cell = STANDARD_CELLS[rng.choice(_LOGIC_CELL_NAMES)]
            name = f"g{level}_{i}"
            gates.append(Gate(name, cell))
            level_of[name] = level

    for i in range(spec.primary_outputs):
        name = f"po{i}"
        gates.append(Gate(name, STANDARD_CELLS["__PO"]))
        level_of[name] = spec.levels + 1

    # Wire fanins: every non-PI gate draws each input pin from a gate in a
    # strictly earlier level (guarantees acyclicity), preferring recent
    # levels so the DAG has ISCAS-like depth structure.
    fanin_choice: Dict[str, List[str]] = {}
    by_level: Dict[int, List[str]] = {}
    for name, level in level_of.items():
        by_level.setdefault(level, []).append(name)
    for level in by_level.values():
        level.sort()

    for gate in gates:
        if gate.is_primary_input:
            continue
        level = level_of[gate.name]
        pins = max(1, gate.cell.inputs)
        sources: List[str] = []
        for _ in range(pins):
            source_level = _pick_source_level(level, rng)
            pool = by_level.get(source_level) or by_level[level - 1]
            sources.append(rng.choice(pool))
        fanin_choice[gate.name] = sources

    # Invert fanins into nets (one net per driving gate), respecting the
    # fanout cap by re-homing overflow sinks to a same-level alternative.
    sinks_of: Dict[str, List[str]] = {g.name: [] for g in gates}
    for sink_name, sources in fanin_choice.items():
        for source in sources:
            sinks_of[source].append(sink_name)

    _enforce_fanout_cap(sinks_of, level_of, spec.max_fanout, rng)
    _ensure_all_driven(sinks_of, gates, level_of, rng)
    _ensure_all_drive(sinks_of, gates, level_of, rng)

    nets = [
        CircuitNet(name=f"n_{driver}", driver=driver,
                   sinks=tuple(dict.fromkeys(sinks)))
        for driver, sinks in sorted(sinks_of.items())
        if sinks
    ]
    return Netlist(spec.name, gates, nets)


def _split_levels(total: int, levels: int, rng: random.Random) -> List[int]:
    """Distribute ``total`` gates over ``levels`` with mild randomness."""
    base = [total // levels] * levels
    for i in range(total - sum(base)):
        base[i % levels] += 1
    for _ in range(levels):
        a, b = rng.randrange(levels), rng.randrange(levels)
        if base[a] > 1:
            shift = rng.randrange(0, max(1, base[a] // 3) + 1)
            base[a] -= shift
            base[b] += shift
    return [max(1, c) for c in base]


def _pick_source_level(level: int, rng: random.Random) -> int:
    """Mostly the previous level, sometimes further back (shortcuts)."""
    if level == 1 or rng.random() < 0.7:
        return level - 1
    return rng.randrange(0, level - 1) if level > 1 else 0


def _enforce_fanout_cap(sinks_of: Dict[str, List[str]],
                        level_of: Dict[str, int], cap: int,
                        rng: random.Random) -> None:
    """Re-home overflow sinks from oversubscribed drivers."""
    for driver in sorted(sinks_of):
        overflow = sinks_of[driver][cap:]
        if not overflow:
            continue
        del sinks_of[driver][cap:]
        donors = [d for d in sinks_of
                  if d != driver
                  and level_of[d] == level_of[driver]
                  and len(sinks_of[d]) < cap]
        for sink in overflow:
            eligible = [d for d in donors
                        if len(sinks_of[d]) < cap
                        and level_of[d] < level_of[sink]
                        and d != sink]
            if eligible:
                sinks_of[rng.choice(eligible)].append(sink)
            else:
                sinks_of[driver].append(sink)  # cap is best-effort


def _ensure_all_driven(sinks_of: Dict[str, List[str]],
                       gates: Sequence[Gate], level_of: Dict[str, int],
                       rng: random.Random) -> None:
    """Every non-PI gate must appear as a sink of some earlier-level net."""
    driven = {sink for sinks in sinks_of.values() for sink in sinks}
    for gate in gates:
        if gate.is_primary_input or gate.name in driven:
            continue
        candidates = [d for d in sinks_of
                      if level_of[d] < level_of[gate.name] and d != gate.name]
        sinks_of[rng.choice(sorted(candidates))].append(gate.name)


def _ensure_all_drive(sinks_of: Dict[str, List[str]],
                      gates: Sequence[Gate], level_of: Dict[str, int],
                      rng: random.Random) -> None:
    """Every logic gate must drive something.

    A dead-end gate would sit off every PO path, making its timing
    unconstrained (and the STA's worst slack spuriously negative); real
    netlists prune such gates, so the generator wires each one to a
    later-level gate or primary output instead.
    """
    by_name = {g.name: g for g in gates}
    for gate in gates:
        if gate.is_primary_input or gate.is_primary_output:
            continue
        if sinks_of[gate.name]:
            continue
        later = sorted(
            name for name, level in level_of.items()
            if level > level_of[gate.name] and name != gate.name
            and not by_name[name].is_primary_input)
        sinks_of[gate.name].append(rng.choice(later))
