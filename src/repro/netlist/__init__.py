"""Gate-level netlist substrate for the Table 2 (full-flow) experiment.

The paper's Table 2 measures post-layout area and delay of mapped
benchmark circuits inside SIS.  Neither SIS nor the mapped ISCAS/MCNC
netlists are available offline, so this subpackage provides the substitute
flow (DESIGN.md substitution #2): a gate-level netlist IR, a synthetic
seeded circuit generator with ISCAS-like shapes, a deterministic grid
placement, a static timing analyzer, and a flow runner that optimizes every
multi-sink net with one of the three experimental flows and reports
circuit-level area/delay — the same quantities Table 2 tabulates.
"""

from repro.netlist.netlist import (
    CellType,
    Gate,
    CircuitNet,
    Netlist,
    STANDARD_CELLS,
)
from repro.netlist.generator import CircuitSpec, generate_circuit
from repro.netlist.placement import place_netlist
from repro.netlist.sta import StaResult, run_sta
from repro.netlist.flow_runner import CircuitFlowResult, run_circuit_flow

__all__ = [
    "CellType",
    "Gate",
    "CircuitNet",
    "Netlist",
    "STANDARD_CELLS",
    "CircuitSpec",
    "generate_circuit",
    "place_netlist",
    "StaResult",
    "run_sta",
    "CircuitFlowResult",
    "run_circuit_flow",
]
