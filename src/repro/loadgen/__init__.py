"""Seeded load generation and replay for the serving tier.

Three pieces, composable from the CLI (``merlin-repro loadgen``), from
tests, and from CI:

* :mod:`repro.loadgen.workload` — :class:`WorkloadSpec` /
  :func:`generate_workload` / ``save_workload``/``load_workload``:
  deterministic request lists (fresh nets, verbatim repeats, and
  renamed/translated cache-equivalent twins) that record to JSON and
  replay byte-identically;
* :mod:`repro.loadgen.harness` — :func:`run_workload` drives any v1
  front end through :class:`repro.client.MerlinClient` and yields a
  :class:`LoadReport` (p50/p95/p99, histogram, per-second trend,
  throughput), :func:`write_bench_serve` freezes it into
  ``BENCH_serve.json``, :func:`check_equivalence` asserts one signature
  per cache-equivalence class;
* :mod:`repro.loadgen.crosscheck` — :func:`run_cross_check`, the
  sync-vs-async bit-identity gate.
"""

from repro.loadgen.crosscheck import run_cross_check
from repro.loadgen.harness import (
    LoadReport,
    RequestOutcome,
    build_bench_serve,
    check_equivalence,
    compare_signature_maps,
    percentile,
    render_trend,
    run_workload,
    write_bench_serve,
)
from repro.loadgen.workload import (
    Workload,
    WorkloadSpec,
    generate_workload,
    load_workload,
    resolve_workload,
    save_workload,
)

__all__ = [
    "LoadReport",
    "RequestOutcome",
    "Workload",
    "WorkloadSpec",
    "build_bench_serve",
    "check_equivalence",
    "compare_signature_maps",
    "generate_workload",
    "load_workload",
    "percentile",
    "render_trend",
    "resolve_workload",
    "run_cross_check",
    "run_workload",
    "save_workload",
    "write_bench_serve",
]
