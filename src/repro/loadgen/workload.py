"""Seeded serving workloads: generate, record, replay.

A *workload* is an ordered list of HTTP requests (path + JSON body)
that a harness (:mod:`repro.loadgen.harness`) fires at a running MERLIN
front end.  Workloads are pure functions of their
:class:`WorkloadSpec` — same spec, same seed, byte-identical request
list — and they serialize to JSON, so a recorded workload replays
exactly in CI months later regardless of generator drift (the recorded
file, not the generator, is the contract).

Shape of the traffic: mostly distinct optimize requests over seeded
experiment nets (:func:`repro.experiments.nets.make_experiment_net`),
salted with two kinds of repeats that a serving tier must handle well:

* **exact repeats** — the same net again (LRU hit on its shard);
* **disguised repeats** — an earlier net with every name rewritten
  (``twin_fraction``).  These exercise the whole point of canonical
  signatures: the shard router and the cache must both see through the
  disguise, so twins hit the same shard's cache even though their JSON
  labels differ everywhere.

Twins are rename-only by default.  The canonical cache also identifies
*translated* twins, but translation changes the absolute coordinates
the engine computes with, and last-ulp arithmetic differences can flip
DP tie-breaks between equally-good trees — so a translated twin may
legitimately compute a *different* valid tree than its base, and which
one seeds the cache depends on arrival order.  A workload that must
support the bit-identity gate (sync path == async path, signature for
signature) therefore keeps ``translate_twins`` off; turn it on only for
cache-realism load runs where the comparison is "one signature per
equivalence class *per replay*" rather than across replays.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.nets import make_experiment_net
from repro.net import net_to_dict
from repro.resilience.errors import MerlinInputError

#: Bump when the workload JSON schema changes.
WORKLOAD_VERSION = 1


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything a workload is derived from (all determinism lives
    here)."""

    requests: int = 64
    #: Distinct underlying nets; the rest of the traffic repeats them.
    distinct_nets: int = 16
    min_sinks: int = 4
    max_sinks: int = 10
    seed: int = 1999
    #: Fraction of requests that are renamed twins of an earlier request
    #: (cache-equivalent, JSON-labels-different).
    twin_fraction: float = 0.25
    #: Fraction that repeat an earlier request verbatim.
    repeat_fraction: float = 0.25
    #: Also translate twins (see module docstring: breaks cross-replay
    #: bit-identity, keep off for gated workloads).
    translate_twins: bool = False

    def __post_init__(self) -> None:
        if self.requests < 1 or self.distinct_nets < 1:
            raise MerlinInputError("workload needs >= 1 request and net")
        if not 2 <= self.min_sinks <= self.max_sinks:
            raise MerlinInputError(
                f"bad sink range [{self.min_sinks}, {self.max_sinks}]")
        if not 0.0 <= self.twin_fraction + self.repeat_fraction <= 1.0:
            raise MerlinInputError(
                "twin_fraction + repeat_fraction must be within [0, 1]")


@dataclass
class Workload:
    """An ordered, replayable request list."""

    spec: WorkloadSpec
    #: One entry per request: {"path", "body", "kind", "base"} where
    #: ``kind`` is fresh|repeat|twin and ``base`` is the index of the
    #: fresh request a repeat/twin is equivalent to (itself when fresh).
    requests: List[Dict[str, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def equivalence_classes(self) -> Dict[int, List[int]]:
        """Request indices grouped by the fresh request they are
        cache-equivalent to (harnesses assert equal tree signatures
        within each class)."""
        classes: Dict[int, List[int]] = {}
        for index, request in enumerate(self.requests):
            classes.setdefault(request["base"], []).append(index)
        return classes

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": WORKLOAD_VERSION,
            "spec": asdict(self.spec),
            "requests": self.requests,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Workload":
        version = int(data.get("version", 0))
        if version != WORKLOAD_VERSION:
            raise MerlinInputError(
                f"workload version {version} unsupported "
                f"(expected {WORKLOAD_VERSION})")
        return cls(spec=WorkloadSpec(**data["spec"]),
                   requests=list(data["requests"]))


def _twin_body(body: Dict[str, Any], rng: random.Random, serial: int,
               translate: bool) -> Dict[str, Any]:
    """A disguise of an optimize body with the same canonical signature:
    every label rewritten, and (``translate`` only) the whole net moved
    rigidly."""
    net = body["net"]
    dx = dy = 0.0
    if translate:
        dx = round(rng.uniform(-4000.0, 4000.0), 3)
        dy = round(rng.uniform(-4000.0, 4000.0), 3)
    twin = dict(net)
    twin["name"] = f"{net['name']}__twin{serial}"
    twin["source"] = [net["source"][0] + dx, net["source"][1] + dy]
    twin["sinks"] = [
        {**sink,
         "name": f"t{serial}s{i}",
         "position": [sink["position"][0] + dx, sink["position"][1] + dy]}
        for i, sink in enumerate(net["sinks"])
    ]
    return {"net": twin}


def generate_workload(spec: WorkloadSpec) -> Workload:
    """Expand ``spec`` into its (deterministic) request list."""
    rng = random.Random(spec.seed)
    fresh_bodies: List[Dict[str, Any]] = []
    fresh_indices: List[int] = []
    requests: List[Dict[str, Any]] = []
    for index in range(spec.requests):
        roll = rng.random()
        can_reuse = bool(fresh_bodies)
        if can_reuse and roll < spec.repeat_fraction:
            pick = rng.randrange(len(fresh_bodies))
            requests.append({"path": "/v1/optimize",
                             "body": fresh_bodies[pick],
                             "kind": "repeat",
                             "base": fresh_indices[pick]})
            continue
        if can_reuse and roll < spec.repeat_fraction + spec.twin_fraction:
            pick = rng.randrange(len(fresh_bodies))
            requests.append({"path": "/v1/optimize",
                             "body": _twin_body(fresh_bodies[pick], rng,
                                                index,
                                                spec.translate_twins),
                             "kind": "twin",
                             "base": fresh_indices[pick]})
            continue
        net_id = len(fresh_bodies)
        if net_id >= spec.distinct_nets:
            # Net pool exhausted: a would-be-fresh request becomes a
            # verbatim repeat of a (seeded) earlier net.
            pick = rng.randrange(len(fresh_bodies))
            requests.append({"path": "/v1/optimize",
                             "body": fresh_bodies[pick],
                             "kind": "repeat",
                             "base": fresh_indices[pick]})
            continue
        sinks = spec.min_sinks + (net_id % (spec.max_sinks
                                            - spec.min_sinks + 1))
        net = make_experiment_net(f"load{net_id:04d}", sinks,
                                  seed=spec.seed * 100_003 + net_id)
        fresh_bodies.append({"net": net_to_dict(net)})
        fresh_indices.append(index)
        requests.append({"path": "/v1/optimize", "body": fresh_bodies[-1],
                         "kind": "fresh", "base": index})
    return Workload(spec=spec, requests=requests)


def save_workload(workload: Workload, path: str) -> None:
    """Record a workload to JSON (the replay contract)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(workload.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_workload(path: str) -> Workload:
    """Load a recorded workload for replay."""
    with open(path, "r", encoding="utf-8") as handle:
        return Workload.from_dict(json.load(handle))


def resolve_workload(path: Optional[str] = None,
                     spec: Optional[WorkloadSpec] = None) -> Workload:
    """The harness's front door: replay ``path`` when given, else
    generate from ``spec`` (or the default spec)."""
    if path is not None:
        return load_workload(path)
    return generate_workload(spec or WorkloadSpec())
