"""Drive a MERLIN front end with a workload; measure what matters.

The harness replays a :class:`~repro.loadgen.workload.Workload` against
a running server (sync or async — same protocol) through
:class:`~repro.client.MerlinClient` with a bounded worker pool, and
produces a :class:`LoadReport`:

* per-request outcomes (status, latency, retries, ``cached``, tree
  signature) in request order — the raw record;
* latency percentiles (p50/p95/p99), a log-bucketed histogram, and a
  wall-clock time series (per-second request count + mean latency) —
  the trend view;
* throughput (completed requests / wall seconds).

Reports back two kinds of claims:

* **Performance** — :func:`write_bench_serve` freezes a report into
  ``BENCH_serve.json`` (with the same machine-calibration probe the
  bench suite uses, so the committed numbers can be rescaled to other
  hosts instead of hand-waved).
* **Correctness** — :func:`check_equivalence` asserts every
  cache-equivalent request group (repeats, renamed/translated twins)
  returned one tree signature, and :func:`compare_signature_maps`
  diffs two replays of the same workload (the sync-vs-async
  bit-identity gate in CI).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.client import MerlinClient, RetryPolicy
from repro.loadgen.workload import Workload

#: Histogram bucket upper bounds, milliseconds (last bucket is +inf).
HISTOGRAM_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                        500.0, 1000.0, 2000.0, 5000.0)

#: Schema version of the BENCH_serve.json artifact.
BENCH_SERVE_VERSION = 1


@dataclass
class RequestOutcome:
    """One request's fate, in workload order."""

    index: int
    kind: str
    status: int
    ok: bool
    latency_s: float
    start_offset_s: float
    retries: int = 0
    cached: Optional[bool] = None
    signature: Optional[str] = None
    error_code: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index, "kind": self.kind, "status": self.status,
            "ok": self.ok, "latency_s": round(self.latency_s, 6),
            "start_offset_s": round(self.start_offset_s, 6),
            "retries": self.retries, "cached": self.cached,
            "signature": self.signature, "error_code": self.error_code,
        }


@dataclass
class LoadReport:
    """Everything one workload replay produced."""

    target: str
    concurrency: int
    wall_s: float
    spec: Dict[str, Any]
    outcomes: List[RequestOutcome] = field(default_factory=list)

    # -- aggregates -----------------------------------------------------

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def latencies_ms(self, ok_only: bool = True) -> List[float]:
        return sorted(o.latency_s * 1000.0 for o in self.outcomes
                      if o.ok or not ok_only)

    def percentiles_ms(self) -> Dict[str, float]:
        values = self.latencies_ms()
        return {
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "p99": percentile(values, 99.0),
            "mean": (sum(values) / len(values)) if values else 0.0,
            "max": values[-1] if values else 0.0,
        }

    def histogram_ms(self) -> List[Dict[str, Any]]:
        """Log-bucketed latency histogram (successful requests)."""
        values = self.latencies_ms()
        buckets = []
        lower = 0.0
        remaining = list(values)
        for upper in HISTOGRAM_BUCKETS_MS:
            count = sum(1 for v in remaining if lower <= v < upper)
            buckets.append({"le_ms": upper, "count": count})
            lower = upper
        buckets.append({"le_ms": None,
                        "count": sum(1 for v in values
                                     if v >= HISTOGRAM_BUCKETS_MS[-1])})
        return buckets

    def time_series(self, bucket_s: float = 1.0) -> List[Dict[str, Any]]:
        """Per-wall-clock-bucket request count and mean latency."""
        series: Dict[int, List[float]] = {}
        for outcome in self.outcomes:
            series.setdefault(int(outcome.start_offset_s // bucket_s),
                              []).append(outcome.latency_s * 1000.0)
        return [{"t_s": bucket * bucket_s,
                 "count": len(lat),
                 "mean_ms": round(sum(lat) / len(lat), 3)}
                for bucket, lat in sorted(series.items())]

    def counts(self) -> Dict[str, int]:
        outcomes = self.outcomes
        return {
            "requests": len(outcomes),
            "ok": self.completed,
            "errors": sum(1 for o in outcomes if not o.ok),
            "rejected_429": sum(1 for o in outcomes if o.status == 429),
            "retried": sum(1 for o in outcomes if o.retries > 0),
            "cache_hits": sum(1 for o in outcomes if o.cached),
        }

    def signature_map(self) -> Dict[str, str]:
        """Request index -> tree signature (successes only); the unit of
        cross-path identity comparison."""
        return {str(o.index): o.signature for o in self.outcomes
                if o.ok and o.signature is not None}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "concurrency": self.concurrency,
            "wall_s": round(self.wall_s, 6),
            "spec": self.spec,
            "throughput_rps": round(self.throughput_rps, 3),
            "percentiles_ms": {k: round(v, 3) for k, v in
                               self.percentiles_ms().items()},
            "counts": self.counts(),
            "histogram_ms": self.histogram_ms(),
            "time_series": self.time_series(),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


def percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending list (0 when
    empty) — the numpy ``linear`` method, without numpy."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    weight = rank - low
    return sorted_values[low] * (1.0 - weight) + \
        sorted_values[high] * weight


class _WorkerClients:
    """One lazily-built :class:`MerlinClient` per harness worker thread
    (each with its own retry RNG, so replays keep per-worker
    deterministic backoff schedules)."""

    def __init__(self, factory: Callable[[int], MerlinClient]) -> None:
        self._factory = factory
        self._serial = itertools.count()
        self._local = threading.local()

    def get(self) -> MerlinClient:
        if not hasattr(self._local, "client"):
            self._local.client = self._factory(next(self._serial))
        return self._local.client


def _fire_request(clients: _WorkerClients, index: int,
                  request: Dict[str, Any],
                  started: float) -> RequestOutcome:
    """Issue one workload request; always returns an outcome (transport
    errors surface as status 0)."""
    offset = time.perf_counter() - started
    t0 = time.perf_counter()
    try:
        response = clients.get().request("POST", request["path"],
                                         request["body"])
        status, ok, retries = response.status, response.ok, response.retries
        result = response.result if isinstance(response.result, dict) \
            else {}
        error = response.error if isinstance(response.error, dict) else {}
    except Exception as exc:  # noqa: BLE001 — a dead server is data here
        status, ok, retries = 0, False, 0
        result, error = {}, {"code": "transport",
                             "message": str(exc)}
    latency = time.perf_counter() - t0
    return RequestOutcome(
        index=index,
        kind=request.get("kind", "fresh"),
        status=status,
        ok=ok,
        latency_s=latency,
        start_offset_s=offset,
        retries=retries,
        cached=result.get("cached"),
        signature=result.get("tree_signature"),
        error_code=error.get("code"),
    )


def run_workload(base_url: str, workload: Workload, concurrency: int = 4,
                 timeout_s: float = 120.0,
                 client_factory: Optional[Callable[[int], MerlinClient]]
                 = None) -> LoadReport:
    """Replay ``workload`` against ``base_url``; returns the report.

    Requests are submitted in workload order to a pool of ``concurrency``
    workers, each owning one :class:`MerlinClient` whose retry RNG is
    seeded from the workload seed plus the worker index — replays of a
    recorded workload produce the same retry schedules."""
    spec_seed = workload.spec.seed
    if client_factory is None:
        def client_factory(worker: int) -> MerlinClient:
            return MerlinClient(
                base_url, timeout_s=timeout_s,
                retry=RetryPolicy(seed=spec_seed + worker))
    clients = _WorkerClients(client_factory)
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=max(1, concurrency),
                            thread_name_prefix="loadgen") as pool:
        futures = [pool.submit(_fire_request, clients, i, request, started)
                   for i, request in enumerate(workload.requests)]
        outcomes = [future.result() for future in futures]
    wall = time.perf_counter() - started
    return LoadReport(target=base_url, concurrency=concurrency,
                      wall_s=wall, spec=asdict(workload.spec),
                      outcomes=outcomes)


# -- correctness gates --------------------------------------------------


def check_equivalence(workload: Workload, report: LoadReport) -> List[str]:
    """Failures of within-replay identity: every cache-equivalent group
    (fresh + repeats + twins) must produce exactly one tree signature."""
    by_index = {o.index: o for o in report.outcomes}
    failures = []
    for base, indices in workload.equivalence_classes().items():
        signatures = {}
        for index in indices:
            outcome = by_index.get(index)
            if outcome is not None and outcome.ok and outcome.signature:
                signatures.setdefault(outcome.signature, []).append(index)
        if len(signatures) > 1:
            failures.append(
                f"equivalence class of request {base} returned "
                f"{len(signatures)} distinct signatures: "
                f"{sorted(signatures)}")
    return failures


def compare_signature_maps(left: Dict[str, str], right: Dict[str, str],
                           ) -> List[str]:
    """Cross-replay identity failures: requests answered by both runs
    must carry identical tree signatures (the sync-vs-async CI gate)."""
    failures = []
    for key in sorted(set(left) & set(right), key=int):
        if left[key] != right[key]:
            failures.append(f"request {key}: {left[key]!r} != "
                            f"{right[key]!r}")
    return failures


# -- artifacts ----------------------------------------------------------


def build_bench_serve(report: LoadReport, tag: str = "serve",
                      extra: Optional[Dict[str, Any]] = None,
                      ) -> Dict[str, Any]:
    """The BENCH_serve.json document for one replay (environment and
    calibration included, outcomes elided — the summary is the claim)."""
    from repro.bench import calibration_seconds, environment_info

    environment = environment_info()
    environment["calibration_s"] = calibration_seconds()
    document = {
        "version": BENCH_SERVE_VERSION,
        "kind": "serve",
        "tag": tag,
        "environment": environment,
        "target": report.target,
        "concurrency": report.concurrency,
        "spec": report.spec,
        "wall_s": round(report.wall_s, 3),
        "throughput_rps": round(report.throughput_rps, 3),
        "percentiles_ms": {k: round(v, 3) for k, v in
                           report.percentiles_ms().items()},
        "counts": report.counts(),
        "histogram_ms": report.histogram_ms(),
        "time_series": report.time_series(),
    }
    if extra:
        document.update(extra)
    return document


def write_bench_serve(report: LoadReport, path: str, tag: str = "serve",
                      extra: Optional[Dict[str, Any]] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(build_bench_serve(report, tag, extra), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def render_trend(report: LoadReport, width: int = 40) -> str:
    """A terminal trend summary: headline claim, histogram bars, and
    the per-second time series."""
    pct = report.percentiles_ms()
    counts = report.counts()
    lines = [
        f"target {report.target}  concurrency {report.concurrency}",
        f"{counts['ok']}/{counts['requests']} ok in "
        f"{report.wall_s:.2f}s  ->  {report.throughput_rps:.1f} req/s",
        f"latency ms  p50 {pct['p50']:.1f}  p95 {pct['p95']:.1f}  "
        f"p99 {pct['p99']:.1f}  max {pct['max']:.1f}",
        f"cache hits {counts['cache_hits']}  retried {counts['retried']}"
        f"  429s {counts['rejected_429']}  errors {counts['errors']}",
        "",
        "latency histogram:",
    ]
    buckets = [b for b in report.histogram_ms() if b["count"]]
    peak = max((b["count"] for b in buckets), default=1)
    for bucket in buckets:
        label = ("inf" if bucket["le_ms"] is None
                 else f"{bucket['le_ms']:.0f}")
        bar = "#" * max(1, round(width * bucket["count"] / peak))
        lines.append(f"  <= {label:>5} ms  {bucket['count']:>5}  {bar}")
    lines.append("")
    lines.append("per-second trend (count @ mean ms):")
    for point in report.time_series():
        lines.append(f"  t={point['t_s']:>5.1f}s  {point['count']:>4} req"
                     f" @ {point['mean_ms']:.1f} ms")
    return "\n".join(lines)
