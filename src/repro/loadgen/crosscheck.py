"""The sync-vs-async bit-identity gate, as one callable.

Replays one workload through **both** serving paths — the sync
single-pool threading server and the async sharded front end — and
diffs the tree signatures request-by-request.  The engine is
deterministic and both paths share :mod:`repro.service.protocol`, so
any divergence means a routing/caching bug, not noise; the gate treats
a single mismatch as failure.

Used three ways, same code: the ``merlin-repro loadgen --cross-check``
CLI flag, the ``tests/serve`` suite, and the ``async-serve-smoke`` CI
job.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.loadgen.harness import (
    check_equivalence,
    compare_signature_maps,
    run_workload,
)
from repro.loadgen.workload import Workload


def run_cross_check(workload: Workload, shards: int = 2,
                    concurrency: int = 4,
                    queue_limit: Optional[int] = None,
                    **service_kwargs: Any) -> Dict[str, Any]:
    """Replay ``workload`` through both paths; return the verdict.

    ``service_kwargs`` configure every :class:`OptimizationService`
    (both the sync server's single pool and each async shard) so the
    two paths optimize under identical tech/config/objective.

    Returns ``{"identical", "failures", "sync", "async"}`` where the
    reports carry full latency detail for whoever wants it.
    """
    from repro.serve import DEFAULT_QUEUE_LIMIT
    from repro.serve.embedded import EmbeddedAsyncServer, EmbeddedSyncServer

    with EmbeddedSyncServer(**service_kwargs) as sync_server:
        sync_report = run_workload(sync_server.base_url, workload,
                                   concurrency=concurrency)
    with EmbeddedAsyncServer(
            shards=shards,
            queue_limit=queue_limit or DEFAULT_QUEUE_LIMIT,
            **service_kwargs) as async_server:
        async_report = run_workload(async_server.base_url, workload,
                                    concurrency=concurrency)

    failures = []
    failures += [f"sync: {f}"
                 for f in check_equivalence(workload, sync_report)]
    failures += [f"async: {f}"
                 for f in check_equivalence(workload, async_report)]
    failures += [f"cross-path: {f}" for f in compare_signature_maps(
        sync_report.signature_map(), async_report.signature_map())]
    sync_ok = {o.index for o in sync_report.outcomes if o.ok}
    async_ok = {o.index for o in async_report.outcomes if o.ok}
    if sync_ok != async_ok:
        failures.append(
            f"success sets differ: sync-only={sorted(sync_ok - async_ok)} "
            f"async-only={sorted(async_ok - sync_ok)}")
    return {
        "identical": not failures,
        "failures": failures,
        "sync": sync_report,
        "async": async_report,
    }
