"""Process-parallel outer search: multi-seed starts and multi-net batches.

The MERLIN engine is a deterministic, single-threaded function of
``(net, initial order, config)``.  What *is* embarrassingly parallel is
the outer search around it: restarting from several initial sink orders
(the paper's E4 ablation shows the local search is robust to the start,
but restarts still hedge against bad local optima) and optimizing many
nets of a design at once.  This module fans those whole-run units across
a ``ProcessPoolExecutor``.

Determinism is preserved by construction:

* Each task is one complete ``merlin()`` run — no shared mutable state
  crosses a process boundary, so a task's result is bit-identical to
  running it inline (``workers=1`` literally runs the same code path in
  this process, no pool involved).
* Results are collected **by task index**, not completion order, so the
  returned list, the best-pick tie-breaking (lowest cost, then lowest
  task index), and the merged instrumentation report are independent of
  worker scheduling.
* Each worker runs with its own fresh :class:`~repro.instrument.Recorder`
  (the parent's recorder — a live object full of open spans — is never
  pickled); per-task reports are merged in submission order via
  :func:`repro.instrument.merge_reports`.

Worker count resolution: an explicit ``workers=`` argument wins,
otherwise ``config.workers`` (default 1).  Counts above the task count
are clamped; 1 runs inline.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.core.objective import Objective
from repro.instrument import Recorder, merge_reports
from repro.net import Net
from repro.orders.heuristics import random_order
from repro.orders.order import Order
from repro.orders.tsp import tsp_order
from repro.resilience.errors import MerlinInputError
from repro.resilience.faults import fault_point
from repro.routing.export import tree_signature
from repro.routing.tree import RoutingTree
from repro.tech.technology import Technology


@dataclass(frozen=True)
class ParallelTask:
    """One independent MERLIN run (picklable unit of work)."""

    net: Net
    tech: Technology
    config: MerlinConfig
    objective: Objective
    #: None → the engine's default (TSP) initial order.
    initial_order: Optional[Order] = None
    #: Free-form tag carried through to the result ("seed=3", net name…).
    label: str = ""


@dataclass
class TaskResult:
    """The picklable summary a worker sends back for one task.

    Carries the routing tree and the scalar outcome, but not the engine's
    internal solution curves (deep recursive traceback chains that are
    expensive — and pointless — to pickle).
    """

    label: str
    net_name: str
    cost: float
    signature: str
    iterations: int
    converged: bool
    cost_trace: List[float]
    tree: RoutingTree
    #: Per-task instrumentation snapshot (always recorded in the worker).
    report: Dict[str, Any] = field(repr=False, default_factory=dict)


@dataclass
class ParallelOutcome:
    """What a driver returns: per-task results plus the deterministic
    cross-task aggregates."""

    #: One entry per task, in submission order.
    results: List[TaskResult]
    #: Lowest cost; ties broken by submission order.
    best: TaskResult
    #: All per-task reports merged in submission order.
    report: Dict[str, Any]


def _run_task(task: ParallelTask) -> TaskResult:
    """Execute one task with a fresh recorder (runs in the worker)."""
    fault_point("parallel.task", key=task.label or task.net.name)
    recorder = Recorder()
    config = task.config.with_(recorder=recorder)
    result = merlin(task.net, task.tech, config=config,
                    objective=task.objective,
                    initial_order=task.initial_order)
    return TaskResult(
        label=task.label,
        net_name=task.net.name,
        cost=task.objective.cost(result.best.solution),
        signature=tree_signature(result.tree),
        iterations=result.iterations,
        converged=result.converged,
        cost_trace=list(result.cost_trace),
        tree=result.tree,
        report=recorder.report(),
    )


def resolve_workers(workers: Optional[int], config: Optional[MerlinConfig],
                    n_tasks: int) -> int:
    """Effective worker count: explicit arg, else config, clamped."""
    if workers is None:
        workers = config.workers if config is not None else 1
    if workers < 1:
        raise MerlinInputError("workers must be >= 1")
    return max(1, min(workers, n_tasks))


def run_tasks(tasks: Sequence[ParallelTask],
              workers: Optional[int] = None) -> ParallelOutcome:
    """Run ``tasks`` across processes; see the module docstring.

    The parent's ``config.recorder`` (if any) is ignored — every worker
    records into its own fresh recorder and the merged report is
    returned on the outcome.
    """
    tasks = list(tasks)
    if not tasks:
        raise MerlinInputError("no tasks to run")
    n = resolve_workers(workers, tasks[0].config, len(tasks))
    stripped = [
        t if t.config.recorder is None
        else ParallelTask(net=t.net, tech=t.tech,
                          config=t.config.with_(recorder=None),
                          objective=t.objective,
                          initial_order=t.initial_order, label=t.label)
        for t in tasks
    ]
    if n == 1:
        results = [_run_task(t) for t in stripped]
    else:
        with ProcessPoolExecutor(max_workers=n) as pool:
            # pool.map yields in submission order regardless of which
            # worker finishes first — the determinism hinge.
            results = list(pool.map(_run_task, stripped))
    best = min(results, key=lambda r: r.cost)
    report = merge_reports(r.report for r in results)
    return ParallelOutcome(results=results, best=best, report=report)


def multi_start_orders(net: Net, seeds: Sequence[Optional[int]]
                       ) -> List[Tuple[str, Order]]:
    """The initial orders a multi-start sweep runs: seed ``None`` is the
    deterministic TSP order, integers are seeded random shuffles."""
    orders: List[Tuple[str, Order]] = []
    for seed in seeds:
        if seed is None:
            orders.append(("tsp", tsp_order(net)))
        else:
            orders.append((f"seed={seed}", random_order(net, seed=seed)))
    return orders


def run_multi_start(net: Net, tech: Technology,
                    config: Optional[MerlinConfig] = None,
                    objective: Optional[Objective] = None,
                    seeds: Sequence[Optional[int]] = (None, 1, 2, 3),
                    workers: Optional[int] = None) -> ParallelOutcome:
    """Restart MERLIN from several initial orders; keep the best tree."""
    config = config or MerlinConfig()
    objective = objective or Objective.max_required_time()
    tasks = [
        ParallelTask(net=net, tech=tech, config=config,
                     objective=objective, initial_order=order, label=label)
        for label, order in multi_start_orders(net, seeds)
    ]
    return run_tasks(tasks, workers=workers)


def run_batch(nets: Sequence[Net], tech: Technology,
              config: Optional[MerlinConfig] = None,
              objective: Optional[Objective] = None,
              workers: Optional[int] = None) -> ParallelOutcome:
    """Optimize many nets independently (one task per net).

    ``outcome.results[i]`` corresponds to ``nets[i]``; ``outcome.best``
    is the lowest-cost net and mostly only meaningful for homogeneous
    sweeps — the per-net results are the real product here.
    """
    config = config or MerlinConfig()
    objective = objective or Objective.max_required_time()
    tasks = [
        ParallelTask(net=net, tech=tech, config=config,
                     objective=objective, label=net.name)
        for net in nets
    ]
    return run_tasks(tasks, workers=workers)


def default_worker_count() -> int:
    """A sensible pool size for this machine (used by CLI ``--workers 0``)."""
    return max(1, os.cpu_count() or 1)


def multi_start_merlin(net: Net, tech: Technology,
                       config: Optional[MerlinConfig] = None,
                       objective: Optional[Objective] = None,
                       seeds: Sequence[Optional[int]] = (None, 1, 2, 3),
                       workers: Optional[int] = None) -> ParallelOutcome:
    """Deprecated alias of :func:`run_multi_start`.

    Kept importable for callers that picked up the pre-facade name; use
    :func:`repro.optimize` (``multi_start=``/``seeds=``) or
    :func:`run_multi_start` instead.
    """
    import warnings

    warnings.warn(
        "repro.parallel.multi_start_merlin is deprecated; use "
        "repro.optimize(net, multi_start=K) or "
        "repro.parallel.run_multi_start",
        DeprecationWarning, stacklevel=2)
    return run_multi_start(net, tech, config=config, objective=objective,
                           seeds=seeds, workers=workers)
