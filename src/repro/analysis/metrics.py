"""Structural and timing quality metrics for routing trees."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.routing.evaluate import TreeEvaluation, evaluate_tree
from repro.routing.tree import BufferNode, RoutingTree, SinkNode, TreeNode
from repro.tech.technology import Technology


@dataclass(frozen=True)
class TreeMetrics:
    """One tree's quality summary."""

    #: Routed length / half-perimeter of the net's bounding box (>= 1 for
    #: multi-sink nets; close to 1 means near-minimal interconnect).
    wirelength_ratio: float
    #: Number of buffer stages on the deepest source-to-sink path.
    max_stage_depth: int
    #: Buffers inserted per sink (a density measure).
    buffers_per_sink: float
    #: Worst and total negative slack over the sinks (ps).
    worst_slack: float
    total_negative_slack: float
    #: Spread of sink arrival times (max - min, ps): big spreads suggest
    #: the tree serves criticalities unevenly.
    arrival_skew: float


def tree_metrics(tree: RoutingTree, tech: Technology,
                 evaluation: TreeEvaluation = None) -> TreeMetrics:
    """Compute :class:`TreeMetrics`; reuses ``evaluation`` when given."""
    net = tree.net
    ev = evaluation or evaluate_tree(tree, tech)
    half_perimeter = max(net.bounding_box.half_perimeter, 1e-9)
    slacks = slack_profile(tree, tech, ev)
    arrivals = list(ev.sink_arrivals.values())
    return TreeMetrics(
        wirelength_ratio=tree.wire_length / half_perimeter,
        max_stage_depth=max(stage_depths(tree).values(), default=0),
        buffers_per_sink=ev.buffer_count / len(net),
        worst_slack=min(slacks.values()),
        total_negative_slack=sum(min(0.0, s) for s in slacks.values()),
        arrival_skew=max(arrivals) - min(arrivals),
    )


def slack_profile(tree: RoutingTree, tech: Technology,
                  evaluation: TreeEvaluation = None) -> Dict[int, float]:
    """Per-sink slack (ps): required time minus arrival, at arrival 0 at
    the driver input.  Negative means the sink misses its requirement when
    the signal launches at time zero."""
    ev = evaluation or evaluate_tree(tree, tech)
    net = tree.net
    return {
        index: net.sink(index).required_time - arrival
        for index, arrival in ev.sink_arrivals.items()
    }


def stage_depths(tree: RoutingTree) -> Dict[int, int]:
    """Buffer stages crossed from the source to each sink.

    For a Cα_Tree this is each sink's depth in the buffer-chain hierarchy;
    the paper's intuition — less critical sinks sit deeper — can be
    checked directly against this map.
    """
    depths: Dict[int, int] = {}

    def walk(node: TreeNode, depth: int) -> None:
        if isinstance(node, SinkNode):
            depths[node.sink_index] = depth
            return
        next_depth = depth + 1 if isinstance(node, BufferNode) else depth
        for child in node.children:
            walk(child, next_depth)

    walk(tree.root, 0)
    return depths
