"""Human-readable summaries of recorded instrumentation reports.

Consumes the JSON report produced by :meth:`repro.instrument.Recorder.
report` (or the recorder itself) and renders where the work went: timing
spans, DP volume counters, prune effectiveness, per-level curve growth,
and the MERLIN convergence trace.  This is the analysis-side counterpart
of the ``--stats`` CLI flag.
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

from repro.instrument import names as metric
from repro.instrument.recorder import Recorder
from repro.instrument.report import coerce_recorder


def derived_metrics(source: Union[Recorder, Dict[str, Any], str]
                    ) -> Dict[str, float]:
    """Ratios the raw counters imply, keyed by stable derived names.

    * ``memo_hit_rate`` — fraction of *PTREE range lookups answered by
      the Lemma 7 memo (hits / (hits + computed)).
    * ``prune_survival`` — overall fraction of solutions surviving curve
      pruning (1 - removed / considered).
    * ``join_pairs_per_call`` — mean cross-product size per join.
    * ``ptree_time_fraction`` — *PTREE routing seconds over total
      ``bubble_construct`` seconds (span-path based).
    * ``curve_op_mix_*`` — fraction of kernel curve operations that were
      extends / joins / buffer insertions (DP work profile).
    * ``buffer_shadow_skip_ratio`` — fraction of candidate buffer offers
      the Li & Shi predecessor test discarded before insertion.
    * ``relocate_passes_total`` / ``vg_hops_total`` — relocation sweep
      and van Ginneken bottom-up hop volume.
    * ``dp_reuse_hits_total`` — Γ-cell memo plus neighborhood-search
      reuse hits across MERLIN iterations.
    * ``flow_runtime_total_s`` / ``merlin_*`` / ``finalize_time_fraction``
      / ``kernel_span_mix_*`` — whole-run profile: where the wall-clock
      went and how far the cost converged.
    * ``service_*`` / ``serve_*`` / ``cache_flushed_entries_total`` —
      serving-tier health: admission pressure, job latency, breaker
      opens, supervisor probe/restart activity, brownout and drain
      accounting.
    * ``pipeline_*`` — timing-closure loop health: cache leverage,
      degradation/failure fractions, rollback rate, best delay reached,
      and write-ahead journal activity.
    """
    rec = coerce_recorder(source)
    counters = rec.counters
    out: Dict[str, float] = {}

    hits = counters.get(metric.BUBBLE_RANGE_MEMO_HITS, 0)
    computed = counters.get(metric.BUBBLE_RANGES, 0)
    if hits + computed:
        out["memo_hit_rate"] = hits / (hits + computed)

    prunes = counters.get(metric.CURVE_PRUNE_CALLS, 0)
    removed = counters.get(metric.CURVE_PRUNE_REMOVED, 0)
    ratio_series = rec.series.get(metric.CURVE_PRUNE_SURVIVOR_RATIO)
    if prunes and ratio_series is not None:
        out["prune_survival"] = ratio_series.mean
        out["pruned_solutions_total"] = float(removed)

    calls = counters.get(metric.PTREE_JOIN_CALLS, 0)
    pairs = counters.get(metric.PTREE_JOIN_PAIRS, 0)
    if calls:
        out["join_pairs_per_call"] = pairs / calls

    bubble_s = sum(s.total_s for path, s in rec.spans.items()
                   if path.split("/")[-1] == metric.SPAN_BUBBLE_CONSTRUCT)
    ptree_s = sum(s.total_s for path, s in rec.spans.items()
                  if path.split("/")[-1] == metric.SPAN_PTREE)
    if bubble_s > 0:
        out["ptree_time_fraction"] = ptree_s / bubble_s

    extends = counters.get(metric.OPS_EXTEND, 0)
    joins = counters.get(metric.OPS_JOIN, 0)
    buffers = counters.get(metric.OPS_BUFFER, 0)
    ops_total = extends + joins + buffers
    if ops_total:
        out["curve_ops_total"] = float(ops_total)
        out["curve_op_mix_extend"] = extends / ops_total
        out["curve_op_mix_join"] = joins / ops_total
        out["curve_op_mix_buffer"] = buffers / ops_total

    skips = counters.get(metric.PTREE_BUFFER_SHADOW_SKIPS, 0)
    if buffers + skips:
        out["buffer_shadow_skip_ratio"] = skips / (buffers + skips)

    passes = counters.get(metric.PTREE_RELOCATE_PASSES, 0)
    if passes:
        out["relocate_passes_total"] = float(passes)

    reuse = (counters.get(metric.BUBBLE_GAMMA_MEMO_HITS, 0)
             + counters.get(metric.BUBBLE_NEIGHBORHOOD_HITS, 0))
    if reuse:
        out["dp_reuse_hits_total"] = float(reuse)

    hops = counters.get(metric.VG_HOPS, 0)
    if hops:
        out["vg_hops_total"] = float(hops)

    _derive_run_metrics(rec, counters, out)
    _derive_serving_metrics(rec, counters, out)
    _derive_pipeline_metrics(rec, counters, out)
    return out


def _span_seconds(rec: Recorder, leaf: str) -> float:
    """Total seconds of every span whose path ends in ``leaf``."""
    return sum(s.total_s for path, s in rec.spans.items()
               if path.split("/")[-1] == leaf)


def _derive_run_metrics(rec: Recorder, counters: Dict[str, int],
                        out: Dict[str, float]) -> None:
    """Whole-run summaries: flow runtime, convergence, span profile."""
    flow = rec.series.get(metric.FLOW_RUNTIME_S)
    if flow is not None:
        out["flow_runtime_total_s"] = flow.total

    cost = rec.series.get(metric.MERLIN_ITERATION_COST)
    if cost is not None and cost.count:
        out["merlin_final_cost"] = cost.last
        out["merlin_cost_improvement"] = cost.maximum - cost.last

    merlin_s = _span_seconds(rec, metric.SPAN_MERLIN)
    finalize_s = _span_seconds(rec, metric.SPAN_FINALIZE)
    if merlin_s > 0:
        out["finalize_time_fraction"] = finalize_s / merlin_s

    join_s = _span_seconds(rec, metric.SPAN_KERNEL_JOIN)
    buffer_s = _span_seconds(rec, metric.SPAN_KERNEL_BUFFER)
    relocate_s = _span_seconds(rec, metric.SPAN_KERNEL_RELOCATE)
    prune_s = _span_seconds(rec, metric.SPAN_KERNEL_PRUNE)
    kernel_s = join_s + buffer_s + relocate_s + prune_s
    if kernel_s > 0:
        out["kernel_span_mix_join"] = join_s / kernel_s
        out["kernel_span_mix_buffer"] = buffer_s / kernel_s
        out["kernel_span_mix_relocate"] = relocate_s / kernel_s
        out["kernel_span_mix_prune"] = prune_s / kernel_s


def _derive_serving_metrics(rec: Recorder, counters: Dict[str, int],
                            out: Dict[str, float]) -> None:
    """Service/serving-tier health: admission, jobs, self-healing."""
    requests = counters.get(metric.SERVICE_REQUESTS, 0)
    jobs = counters.get(metric.SERVICE_JOBS, 0)
    if requests:
        out["service_jobs_per_request"] = jobs / requests
    job_latency = rec.series.get(metric.SERVICE_JOB_LATENCY_S)
    if job_latency is not None and job_latency.count:
        out["service_job_latency_mean_s"] = job_latency.mean

    admitted = counters.get(metric.SERVE_ADMITTED, 0)
    rejected = counters.get(metric.SERVE_REJECTED, 0)
    if admitted + rejected:
        out["serve_rejection_rate"] = rejected / (admitted + rejected)
    depth = rec.series.get(metric.SERVE_QUEUE_DEPTH)
    if depth is not None and depth.count:
        out["serve_queue_depth_peak"] = depth.maximum

    probes = counters.get(metric.SERVE_SUPERVISOR_PROBES, 0)
    probe_failures = counters.get(metric.SERVE_SUPERVISOR_PROBE_FAILURES, 0)
    if probes:
        out["serve_probe_failure_rate"] = probe_failures / probes
    opens = counters.get(metric.SERVE_BREAKER_OPENS, 0)
    if opens:
        out["serve_breaker_opens_total"] = float(opens)
        out["serve_breaker_short_circuits_total"] = float(
            counters.get(metric.SERVE_BREAKER_SHORT_CIRCUITS, 0))
    restarts = counters.get(metric.SERVE_SUPERVISOR_RESTARTS, 0)
    if restarts:
        out["serve_supervisor_restarts_total"] = float(restarts)
    browned = counters.get(metric.SERVE_BROWNOUT_ADMITTED, 0)
    if counters.get(metric.SERVE_BROWNOUT_ENTERED, 0) or browned:
        out["serve_brownout_admitted_total"] = float(browned)
    refusals = counters.get(metric.SERVE_DRAIN_REFUSALS, 0)
    if refusals:
        out["serve_drain_refusals_total"] = float(refusals)
    flushed = counters.get(metric.RESILIENCE_CACHE_FLUSHED, 0)
    if flushed:
        out["cache_flushed_entries_total"] = float(flushed)


def _derive_pipeline_metrics(rec: Recorder, counters: Dict[str, int],
                             out: Dict[str, float]) -> None:
    """Timing-closure loop health: progress, fallbacks, the journal."""
    iterations = counters.get(metric.PIPELINE_ITERATIONS, 0)
    reoptimized = counters.get(metric.PIPELINE_NETS_REOPTIMIZED, 0)
    if reoptimized:
        hits = counters.get(metric.PIPELINE_CACHE_HITS, 0)
        out["pipeline_cache_hit_rate"] = hits / reoptimized
        out["pipeline_degraded_fraction"] = \
            counters.get(metric.PIPELINE_NETS_DEGRADED, 0) / reoptimized
    failed = counters.get(metric.PIPELINE_NETS_FAILED, 0)
    if reoptimized + failed:
        out["pipeline_failed_fraction"] = failed / (reoptimized + failed)
    if iterations:
        out["pipeline_rollback_rate"] = \
            counters.get(metric.PIPELINE_ROLLBACKS, 0) / iterations
    delay = rec.series.get(metric.PIPELINE_ITERATION_DELAY_PS)
    if delay is not None and delay.count:
        out["pipeline_best_delay_ps"] = delay.minimum
    wall = rec.series.get(metric.PIPELINE_ITERATION_WALL_S)
    if wall is not None and wall.count:
        out["pipeline_iteration_wall_mean_s"] = wall.mean

    records = counters.get(metric.PIPELINE_JOURNAL_RECORDS, 0)
    replayed = counters.get(metric.PIPELINE_JOURNAL_REPLAYED, 0)
    torn = counters.get(metric.PIPELINE_JOURNAL_TORN, 0)
    if records or replayed or torn:
        out["pipeline_journal_records_total"] = float(records)
        out["pipeline_journal_replayed_total"] = float(replayed)
        out["pipeline_journal_torn_total"] = float(torn)


def summarize_report(source: Union[Recorder, Dict[str, Any], str]) -> str:
    """Render one recorded run as a plain-text summary."""
    rec = coerce_recorder(source)
    lines: List[str] = []

    if rec.spans:
        lines.append("Timing spans (path: count, total seconds):")
        for path in sorted(rec.spans,
                           key=lambda p: -rec.spans[p].total_s):
            span = rec.spans[path]
            lines.append(f"  {path:42s} {span.count:7d}  {span.total_s:9.4f}s")

    if rec.counters:
        lines.append("Counters:")
        for name in sorted(rec.counters):
            lines.append(f"  {name:42s} {rec.counters[name]:12d}")

    level_series = sorted(
        (name for name in rec.series
         if name.startswith("bubble.level.")
         and name.endswith(".curve_size_post")),
        key=lambda name: int(name.split(".")[2]))
    if level_series:
        lines.append("Per-level curve sizes (level: cells, mean pre -> "
                     "mean post):")
        for post_name in level_series:
            size = int(post_name.split(".")[2])
            pre = rec.series.get(metric.level_curve_size_pre(size))
            post = rec.series[post_name]
            pre_mean = pre.mean if pre is not None else float("nan")
            lines.append(f"  level {size:3d}: {post.count:5d} cells, "
                         f"{pre_mean:8.1f} -> {post.mean:8.1f}")

    derived = derived_metrics(rec)
    if derived:
        lines.append("Derived:")
        for name in sorted(derived):
            lines.append(f"  {name:42s} {derived[name]:12.4f}")

    iterations = rec.events.get(metric.EVENT_MERLIN_ITERATION, [])
    if iterations:
        lines.append("MERLIN iterations:")
        for entry in iterations:
            lines.append(
                f"  #{entry.get('index')}: cost={entry.get('cost'):.3f} "
                f"improved={entry.get('improved')} "
                f"order={entry.get('order')}")
    for entry in rec.events.get(metric.EVENT_MERLIN_RESULT, []):
        lines.append(
            f"Result: net={entry.get('net')} sinks={entry.get('sinks')} "
            f"iterations={entry.get('iterations')} "
            f"converged={entry.get('converged')} "
            f"best_cost={entry.get('best_cost'):.3f}")

    if not lines:
        return "(empty report)"
    return "\n".join(lines)
