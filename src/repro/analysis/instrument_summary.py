"""Human-readable summaries of recorded instrumentation reports.

Consumes the JSON report produced by :meth:`repro.instrument.Recorder.
report` (or the recorder itself) and renders where the work went: timing
spans, DP volume counters, prune effectiveness, per-level curve growth,
and the MERLIN convergence trace.  This is the analysis-side counterpart
of the ``--stats`` CLI flag.
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

from repro.instrument import names as metric
from repro.instrument.recorder import Recorder
from repro.instrument.report import coerce_recorder


def derived_metrics(source: Union[Recorder, Dict[str, Any], str]
                    ) -> Dict[str, float]:
    """Ratios the raw counters imply, keyed by stable derived names.

    * ``memo_hit_rate`` — fraction of *PTREE range lookups answered by
      the Lemma 7 memo (hits / (hits + computed)).
    * ``prune_survival`` — overall fraction of solutions surviving curve
      pruning (1 - removed / considered).
    * ``join_pairs_per_call`` — mean cross-product size per join.
    * ``ptree_time_fraction`` — *PTREE routing seconds over total
      ``bubble_construct`` seconds (span-path based).
    * ``curve_op_mix_*`` — fraction of kernel curve operations that were
      extends / joins / buffer insertions (DP work profile).
    * ``buffer_shadow_skip_ratio`` — fraction of candidate buffer offers
      the Li & Shi predecessor test discarded before insertion.
    * ``relocate_passes_total`` / ``vg_hops_total`` — relocation sweep
      and van Ginneken bottom-up hop volume.
    * ``dp_reuse_hits_total`` — Γ-cell memo plus neighborhood-search
      reuse hits across MERLIN iterations.
    """
    rec = coerce_recorder(source)
    counters = rec.counters
    out: Dict[str, float] = {}

    hits = counters.get(metric.BUBBLE_RANGE_MEMO_HITS, 0)
    computed = counters.get(metric.BUBBLE_RANGES, 0)
    if hits + computed:
        out["memo_hit_rate"] = hits / (hits + computed)

    prunes = counters.get(metric.CURVE_PRUNE_CALLS, 0)
    removed = counters.get(metric.CURVE_PRUNE_REMOVED, 0)
    ratio_series = rec.series.get(metric.CURVE_PRUNE_SURVIVOR_RATIO)
    if prunes and ratio_series is not None:
        out["prune_survival"] = ratio_series.mean
        out["pruned_solutions_total"] = float(removed)

    calls = counters.get(metric.PTREE_JOIN_CALLS, 0)
    pairs = counters.get(metric.PTREE_JOIN_PAIRS, 0)
    if calls:
        out["join_pairs_per_call"] = pairs / calls

    bubble_s = sum(s.total_s for path, s in rec.spans.items()
                   if path.split("/")[-1] == metric.SPAN_BUBBLE_CONSTRUCT)
    ptree_s = sum(s.total_s for path, s in rec.spans.items()
                  if path.split("/")[-1] == metric.SPAN_PTREE)
    if bubble_s > 0:
        out["ptree_time_fraction"] = ptree_s / bubble_s

    extends = counters.get(metric.OPS_EXTEND, 0)
    joins = counters.get(metric.OPS_JOIN, 0)
    buffers = counters.get(metric.OPS_BUFFER, 0)
    ops_total = extends + joins + buffers
    if ops_total:
        out["curve_ops_total"] = float(ops_total)
        out["curve_op_mix_extend"] = extends / ops_total
        out["curve_op_mix_join"] = joins / ops_total
        out["curve_op_mix_buffer"] = buffers / ops_total

    skips = counters.get(metric.PTREE_BUFFER_SHADOW_SKIPS, 0)
    if buffers + skips:
        out["buffer_shadow_skip_ratio"] = skips / (buffers + skips)

    passes = counters.get(metric.PTREE_RELOCATE_PASSES, 0)
    if passes:
        out["relocate_passes_total"] = float(passes)

    reuse = (counters.get(metric.BUBBLE_GAMMA_MEMO_HITS, 0)
             + counters.get(metric.BUBBLE_NEIGHBORHOOD_HITS, 0))
    if reuse:
        out["dp_reuse_hits_total"] = float(reuse)

    hops = counters.get(metric.VG_HOPS, 0)
    if hops:
        out["vg_hops_total"] = float(hops)
    return out


def summarize_report(source: Union[Recorder, Dict[str, Any], str]) -> str:
    """Render one recorded run as a plain-text summary."""
    rec = coerce_recorder(source)
    lines: List[str] = []

    if rec.spans:
        lines.append("Timing spans (path: count, total seconds):")
        for path in sorted(rec.spans,
                           key=lambda p: -rec.spans[p].total_s):
            span = rec.spans[path]
            lines.append(f"  {path:42s} {span.count:7d}  {span.total_s:9.4f}s")

    if rec.counters:
        lines.append("Counters:")
        for name in sorted(rec.counters):
            lines.append(f"  {name:42s} {rec.counters[name]:12d}")

    level_series = sorted(
        (name for name in rec.series
         if name.startswith("bubble.level.")
         and name.endswith(".curve_size_post")),
        key=lambda name: int(name.split(".")[2]))
    if level_series:
        lines.append("Per-level curve sizes (level: cells, mean pre -> "
                     "mean post):")
        for post_name in level_series:
            size = int(post_name.split(".")[2])
            pre = rec.series.get(metric.level_curve_size_pre(size))
            post = rec.series[post_name]
            pre_mean = pre.mean if pre is not None else float("nan")
            lines.append(f"  level {size:3d}: {post.count:5d} cells, "
                         f"{pre_mean:8.1f} -> {post.mean:8.1f}")

    derived = derived_metrics(rec)
    if derived:
        lines.append("Derived:")
        for name in sorted(derived):
            lines.append(f"  {name:42s} {derived[name]:12.4f}")

    iterations = rec.events.get(metric.EVENT_MERLIN_ITERATION, [])
    if iterations:
        lines.append("MERLIN iterations:")
        for entry in iterations:
            lines.append(
                f"  #{entry.get('index')}: cost={entry.get('cost'):.3f} "
                f"improved={entry.get('improved')} "
                f"order={entry.get('order')}")
    for entry in rec.events.get(metric.EVENT_MERLIN_RESULT, []):
        lines.append(
            f"Result: net={entry.get('net')} sinks={entry.get('sinks')} "
            f"iterations={entry.get('iterations')} "
            f"converged={entry.get('converged')} "
            f"best_cost={entry.get('best_cost'):.3f}")

    if not lines:
        return "(empty report)"
    return "\n".join(lines)
