"""Post-hoc analysis of routing trees and solution curves.

Quality metrics beyond the raw (delay, area) pair: wirelength efficiency
against the half-perimeter lower bound, buffer-stage statistics of the
Cα hierarchy, per-sink slack profiles, and curve geometry summaries used
by the ablation reports.
"""

from repro.analysis.metrics import (
    TreeMetrics,
    tree_metrics,
    slack_profile,
    stage_depths,
)
from repro.analysis.curve_stats import CurveStats, curve_stats
from repro.analysis.instrument_summary import (
    derived_metrics,
    summarize_report,
)

__all__ = [
    "TreeMetrics",
    "tree_metrics",
    "slack_profile",
    "stage_depths",
    "CurveStats",
    "curve_stats",
    "derived_metrics",
    "summarize_report",
]
