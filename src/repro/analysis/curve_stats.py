"""Geometry summaries of three-dimensional solution curves."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.curves.solution import Solution


@dataclass(frozen=True)
class CurveStats:
    """Shape summary of one non-inferior solution set."""

    size: int
    req_span: float          # best minus worst required time (ps)
    area_span: float         # max minus min total buffer area (um^2)
    load_span: float         # max minus min root load (fF)
    #: Marginal required-time gain per unit area along the area-sorted
    #: front (ps per um^2); quantifies how much the area budget buys.
    req_per_area: float
    #: Fraction of solutions that use no buffers at all.
    unbuffered_fraction: float


def curve_stats(solutions: Iterable[Solution]) -> CurveStats:
    """Summarize ``solutions`` (at least one required)."""
    sols: List[Solution] = list(solutions)
    if not sols:
        raise ValueError("cannot summarize an empty curve")
    reqs = [s.required_time for s in sols]
    areas = [s.area for s in sols]
    loads = [s.load for s in sols]
    area_span = max(areas) - min(areas)
    by_area = sorted(sols, key=lambda s: s.area)
    # Required-time gain of the most expensive vs the cheapest solution.
    gain = by_area[-1].required_time - by_area[0].required_time
    return CurveStats(
        size=len(sols),
        req_span=max(reqs) - min(reqs),
        area_span=area_span,
        load_span=max(loads) - min(loads),
        req_per_area=gain / area_span if area_span > 0 else 0.0,
        unbuffered_fraction=sum(1 for a in areas if a == 0.0) / len(sols),
    )
