"""Benchmark harness: ``python -m repro.bench``.

Runs a pinned suite of nets across curve-kernel backends and worker
counts — plus a service-throughput scenario (warm persistent pool vs
per-net cold fan-out vs cache hits) — records engine wall-clock plus
instrumentation counters, and writes a versioned ``BENCH_<tag>.json``
so every future PR has a trajectory to beat.

The suite is *pinned*: net generators, seeds, and configs are fixed
here, so two runs of the same code measure the same work.  Besides
timing, the harness is a cross-backend equivalence gate — it exits
non-zero if the numpy backend's tree signature diverges from python's,
or if any worker count changes a multi-start outcome.  CI runs
``python -m repro.bench --quick`` for exactly that check.

Usage::

    python -m repro.bench                  # full pinned suite
    python -m repro.bench --quick          # CI-sized subset
    python -m repro.bench --tag pr2        # writes BENCH_pr2.json
    python -m repro.bench --backends python,numpy --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro import parallel
from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.core.objective import Objective
from repro.curves import kernels
from repro.curves.curve import CurveConfig
from repro.experiments.nets import make_experiment_net
from repro.instrument import Recorder
from repro.routing.export import tree_signature
from repro.tech.technology import default_technology

BENCH_VERSION = 1

#: The headline single-engine config: paper-faithful fine quantization
#: (pseudo-polynomial buckets small relative to sink loads) — the regime
#: the vectorized kernels are built for.
_HEAVY_CURVE = CurveConfig(load_step=0.25, area_step=10.0,
                           max_solutions=160)


def _engine_cases(quick: bool) -> List[Dict[str, Any]]:
    """Single-run cases: one net + config, timed per backend."""
    if quick:
        return [{
            "name": "quick6",
            "sinks": 6,
            "seed": 11,
            "config": MerlinConfig.test_preset(),
        }]
    return [{
        # The pinned 15-sink net of the PR-2 acceptance criterion.
        "name": "bench15",
        "sinks": 15,
        "seed": 7,
        "config": MerlinConfig(
            alpha=3, max_candidates=5, library_subset=4,
            max_iterations=1, curve=_HEAVY_CURVE),
    }]


def _parallel_cases(quick: bool) -> List[Dict[str, Any]]:
    """Multi-start cases: one net swept across worker counts."""
    if quick:
        return [{
            "name": "multistart5",
            "sinks": 5,
            "seed": 3,
            "config": MerlinConfig.test_preset(),
            "seeds": (None, 1),
        }]
    return [{
        "name": "multistart8",
        "sinks": 8,
        "seed": 3,
        "config": MerlinConfig(alpha=3, max_candidates=5,
                               library_subset=4, max_iterations=2),
        "seeds": (None, 1, 2, 3),
    }]


def _service_cases(quick: bool) -> List[Dict[str, Any]]:
    """Service-throughput cases: a stream of distinct nets optimized
    through the warm-pool batch engine vs per-net cold pools."""
    if quick:
        return [{
            "name": "service6",
            "n_nets": 6,
            "sinks": 3,
            "config": MerlinConfig.test_preset(),
            "workers": 2,
        }]
    return [{
        # >= 20 nets: the PR-3 acceptance criterion's batch size.
        "name": "service24",
        "n_nets": 24,
        "sinks": 4,
        "config": MerlinConfig.test_preset(),
        "workers": 2,
    }]


def _with_backend(config: MerlinConfig, backend: str) -> MerlinConfig:
    return config.with_(
        curve=dataclasses.replace(config.curve, backend=backend))


def _trimmed_report(recorder: Recorder) -> Dict[str, Any]:
    """Counters and span aggregates only (events are too bulky here)."""
    report = recorder.report()
    return {"counters": report["counters"], "spans": report["spans"]}


def run_engine_case(case: Dict[str, Any],
                    backends: Sequence[str]) -> Dict[str, Any]:
    """Time one pinned net per backend; cross-check tree signatures."""
    net = make_experiment_net(case["name"], case["sinks"], case["seed"])
    tech = default_technology()
    objective = Objective.max_required_time()
    runs: Dict[str, Any] = {}
    for backend in backends:
        recorder = Recorder()
        config = _with_backend(case["config"], backend).with_(
            recorder=recorder)
        start = time.perf_counter()
        result = merlin(net, tech, config=config, objective=objective)
        wall = time.perf_counter() - start
        runs[backend] = {
            "wall_s": wall,
            "resolved_backend": config.curve.resolved_backend(),
            "cost": objective.cost(result.best.solution),
            "signature": tree_signature(result.tree),
            "iterations": result.iterations,
            "instrument": _trimmed_report(recorder),
        }
        print(f"  {case['name']:12s} backend={backend:7s} "
              f"wall={wall:8.2f}s cost={runs[backend]['cost']:.3f}")
    signatures = {r["signature"] for r in runs.values()}
    out: Dict[str, Any] = {
        "name": case["name"],
        "sinks": case["sinks"],
        "net_seed": case["seed"],
        "kind": "engine",
        "runs": runs,
        "signatures_match": len(signatures) == 1,
    }
    if "python" in runs and "numpy" in runs \
            and runs["numpy"]["resolved_backend"] == "numpy":
        out["numpy_speedup"] = (runs["python"]["wall_s"]
                                / runs["numpy"]["wall_s"])
        print(f"  {case['name']:12s} numpy speedup: "
              f"{out['numpy_speedup']:.2f}x")
    return out


def run_parallel_case(case: Dict[str, Any],
                      worker_counts: Sequence[int],
                      backend: str) -> Dict[str, Any]:
    """Sweep one multi-start workload across worker counts."""
    net = make_experiment_net(case["name"], case["sinks"], case["seed"])
    tech = default_technology()
    config = _with_backend(case["config"], backend)
    runs: Dict[str, Any] = {}
    for workers in worker_counts:
        start = time.perf_counter()
        outcome = parallel.run_multi_start(
            net, tech, config=config, seeds=case["seeds"], workers=workers)
        wall = time.perf_counter() - start
        runs[str(workers)] = {
            "wall_s": wall,
            "signatures": [r.signature for r in outcome.results],
            "best_label": outcome.best.label,
            "best_cost": outcome.best.cost,
            "merged_counters": outcome.report["counters"],
        }
        print(f"  {case['name']:12s} workers={workers} wall={wall:8.2f}s "
              f"best={outcome.best.label}")
    baseline = runs[str(worker_counts[0])]
    invariant = all(
        r["signatures"] == baseline["signatures"]
        and r["best_label"] == baseline["best_label"]
        and r["merged_counters"] == baseline["merged_counters"]
        for r in runs.values())
    return {
        "name": case["name"],
        "sinks": case["sinks"],
        "net_seed": case["seed"],
        "kind": "multi_start",
        "backend": backend,
        "start_labels": [label for label, _ in
                         parallel.multi_start_orders(net, case["seeds"])],
        "runs": runs,
        "worker_invariant": invariant,
    }


def run_service_case(case: Dict[str, Any], backend: str) -> Dict[str, Any]:
    """Measure the batch engine three ways on one pinned net stream.

    * ``cold``: a fresh service (fresh pool, fresh cache) per net — every
      net pays process spawn, the pre-PR-3 cost model;
    * ``warm``: one persistent service streams the whole batch through
      its warm pool (``optimize_many``);
    * ``cache``: the same warm service asked again — every net is a
      canonical-cache hit, no DP at all.

    All three must produce identical tree signatures (checked).
    """
    from repro.service import OptimizationService, ResultCache

    config = _with_backend(case["config"], backend)
    nets = [
        make_experiment_net(f"{case['name']}_n{i}", case["sinks"], 100 + i)
        for i in range(case["n_nets"])
    ]
    tech = default_technology()

    start = time.perf_counter()
    cold_results = []
    for net in nets:
        with OptimizationService(tech=tech, config=config,
                                 cache=ResultCache(),
                                 workers=case["workers"]) as svc:
            cold_results.append(svc.optimize(net))
    cold_wall = time.perf_counter() - start

    warm_service = OptimizationService(tech=tech, config=config,
                                       cache=ResultCache(),
                                       workers=case["workers"])
    with warm_service:
        start = time.perf_counter()
        warm_results = warm_service.optimize_many(nets)
        warm_wall = time.perf_counter() - start
        start = time.perf_counter()
        cache_results = warm_service.optimize_many(nets)
        cache_wall = time.perf_counter() - start
        cache_stats = warm_service.cache.stats()

    all_ok = all(r.ok for r in cold_results + warm_results + cache_results)
    signatures_match = (
        [r.signature for r in cold_results]
        == [r.signature for r in warm_results]
        == [r.signature for r in cache_results])
    all_cached = all(r.cached for r in cache_results)
    out = {
        "name": case["name"],
        "kind": "service",
        "n_nets": len(nets),
        "sinks": case["sinks"],
        "workers": case["workers"],
        "backend": backend,
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "cache_wall_s": cache_wall,
        "warm_speedup": cold_wall / warm_wall if warm_wall > 0 else None,
        "cache_speedup": (warm_wall / cache_wall if cache_wall > 0
                          else None),
        "cache_stats": cache_stats,
        "all_ok": all_ok,
        "all_cached_on_second_pass": all_cached,
        "signatures_match": signatures_match,
    }
    print(f"  {case['name']:12s} nets={len(nets)} cold={cold_wall:7.2f}s "
          f"warm={warm_wall:7.2f}s cache={cache_wall:7.3f}s "
          f"warm_speedup={out['warm_speedup']:.2f}x")
    return out


def _environment() -> Dict[str, Any]:
    import os
    env = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "numpy": None,
    }
    if kernels.numpy_available():
        import numpy
        env["numpy"] = numpy.__version__
    return env


def run_suite(quick: bool, backends: Sequence[str],
              worker_counts: Sequence[int], tag: str) -> Dict[str, Any]:
    cases: List[Dict[str, Any]] = []
    for case in _engine_cases(quick):
        cases.append(run_engine_case(case, backends))
    # Worker sweeps exercise the parallel driver on the best available
    # backend (that is how multi-start would actually be run).
    par_backend = "numpy" if "numpy" in backends else backends[0]
    for case in _parallel_cases(quick):
        cases.append(run_parallel_case(case, worker_counts, par_backend))
    for case in _service_cases(quick):
        cases.append(run_service_case(case, par_backend))
    return {
        "version": BENCH_VERSION,
        "tag": tag,
        "quick": quick,
        "backends": list(backends),
        "worker_counts": list(worker_counts),
        "environment": _environment(),
        "cases": cases,
    }


def check_suite(suite: Dict[str, Any]) -> List[str]:
    """Return the list of equivalence failures (empty = all good)."""
    failures = []
    for case in suite["cases"]:
        if case["kind"] == "engine" and not case["signatures_match"]:
            failures.append(
                f"{case['name']}: tree signatures diverge across backends")
        if case["kind"] == "multi_start" and not case["worker_invariant"]:
            failures.append(
                f"{case['name']}: outcome changed with worker count")
        if case["kind"] == "service":
            if not case["signatures_match"]:
                failures.append(
                    f"{case['name']}: cold/warm/cache trees diverge")
            if not case["all_ok"]:
                failures.append(f"{case['name']}: a service job failed")
            if not case["all_cached_on_second_pass"]:
                failures.append(
                    f"{case['name']}: second pass missed the result cache")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="MERLIN pinned benchmark suite")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized subset (small net, seconds not "
                             "minutes)")
    parser.add_argument("--tag", default="local",
                        help="suffix of the BENCH_<tag>.json output")
    parser.add_argument("--out", default=None,
                        help="explicit output path (default "
                             "BENCH_<tag>.json in the current directory)")
    parser.add_argument("--backends", default=None,
                        help="comma-separated backend list (default: "
                             "python,numpy when numpy is available)")
    parser.add_argument("--workers", default="1,2",
                        help="comma-separated worker counts for the "
                             "multi-start sweep (default 1,2)")
    args = parser.parse_args(argv)

    if args.backends:
        backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    elif kernels.numpy_available():
        backends = ["python", "numpy"]
    else:
        backends = ["python"]
    for backend in backends:
        if backend not in kernels.BACKENDS:
            parser.error(f"unknown backend {backend!r}")
    worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]

    suite = run_suite(args.quick, backends, worker_counts, args.tag)
    out_path = args.out or f"BENCH_{args.tag}.json"
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(suite, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")

    failures = check_suite(suite)
    for failure in failures:
        print(f"EQUIVALENCE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
