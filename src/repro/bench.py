"""Benchmark harness: ``python -m repro.bench``.

Runs a pinned suite of nets across curve-kernel backends and worker
counts — plus a service-throughput scenario (warm persistent pool vs
per-net cold fan-out vs cache hits) — records engine wall-clock plus
instrumentation counters, and writes a versioned ``BENCH_<tag>.json``
so every future PR has a trajectory to beat.

The suite is *pinned*: net generators, seeds, and configs are fixed
here, so two runs of the same code measure the same work.  Besides
timing, the harness is a cross-backend equivalence gate — it exits
non-zero if the numpy backend's tree signature diverges from python's,
or if any worker count changes a multi-start outcome.  CI runs
``python -m repro.bench --quick`` for exactly that check.

Timing-regression gate: ``--baseline BENCH_quick.json`` compares the
run's tracked wall-clock timings against a committed snapshot and fails
on >20% slowdowns.  Raw seconds are not comparable across machines, so
both suites carry a *calibration* measurement — a fixed pure-Python
workload timed at suite start — and every comparison is normalized by
the calibration ratio first (a machine 2x slower overall is allowed 2x
the baseline seconds).  Sub-50ms timings are skipped as noise.  Beyond
end-to-end wall clocks, the engine cases track two recorder-span
aggregates (``star_ptree.run``, ``curves.prune``) so DP-internal
regressions cannot hide in harness noise; service and closure cases
run once per backend with backend-qualified keys.

Usage::

    python -m repro.bench                  # full pinned suite
    python -m repro.bench --quick          # CI-sized subset
    python -m repro.bench --tag pr2        # writes BENCH_pr2.json
    python -m repro.bench --backends python,numpy --out /tmp/b.json
    python -m repro.bench --quick --baseline BENCH_quick.json
    python -m repro.bench --quick --profile 25   # cProfile top-25
    merlin-repro bench --quick                   # same flags via the CLI
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro import parallel
from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.core.objective import Objective
from repro.curves import contract
from repro.curves.curve import CurveConfig
from repro.experiments.nets import make_experiment_net
from repro.instrument import Recorder
from repro.routing.export import tree_signature
from repro.tech.technology import default_technology

BENCH_VERSION = 3

#: A tracked timing below this (after calibration scaling) is treated
#: as noise and excluded from the regression gate.
MIN_TRACKED_SECONDS = 0.05

#: Allowed slowdown of a tracked timing vs the (calibration-scaled)
#: baseline before the gate fails.
REGRESSION_THRESHOLD = 0.20

#: The headline single-engine config: paper-faithful fine quantization
#: (pseudo-polynomial buckets small relative to sink loads) — the regime
#: the vectorized kernels are built for.
_HEAVY_CURVE = CurveConfig(load_step=0.25, area_step=10.0,
                           max_solutions=160)


def _engine_cases(quick: bool) -> List[Dict[str, Any]]:
    """Single-run cases: one net + config, timed per backend."""
    if quick:
        return [{
            "name": "quick6",
            "sinks": 6,
            "seed": 11,
            "config": MerlinConfig.test_preset(),
        }]
    return [{
        # The pinned 15-sink net of the PR-2 acceptance criterion.
        "name": "bench15",
        "sinks": 15,
        "seed": 7,
        "config": MerlinConfig(
            alpha=3, max_candidates=5, library_subset=4,
            max_iterations=1, curve=_HEAVY_CURVE),
    }]


def _parallel_cases(quick: bool) -> List[Dict[str, Any]]:
    """Multi-start cases: one net swept across worker counts."""
    if quick:
        return [{
            "name": "multistart5",
            "sinks": 5,
            "seed": 3,
            "config": MerlinConfig.test_preset(),
            "seeds": (None, 1),
        }]
    return [{
        "name": "multistart8",
        "sinks": 8,
        "seed": 3,
        "config": MerlinConfig(alpha=3, max_candidates=5,
                               library_subset=4, max_iterations=2),
        "seeds": (None, 1, 2, 3),
    }]


def _service_cases(quick: bool) -> List[Dict[str, Any]]:
    """Service-throughput cases: a stream of distinct nets optimized
    through the warm-pool batch engine vs per-net cold pools."""
    if quick:
        return [{
            "name": "service6",
            "n_nets": 6,
            "sinks": 3,
            "config": MerlinConfig.test_preset(),
            "workers": 2,
        }]
    return [{
        # >= 20 nets: the PR-3 acceptance criterion's batch size.
        "name": "service24",
        "n_nets": 24,
        "sinks": 4,
        "config": MerlinConfig.test_preset(),
        "workers": 2,
    }]


def _with_backend(config: MerlinConfig, backend: str) -> MerlinConfig:
    return config.with_(
        curve=dataclasses.replace(config.curve, backend=backend))


def _trimmed_report(recorder: Recorder) -> Dict[str, Any]:
    """Counters and span aggregates only (events are too bulky here)."""
    report = recorder.report()
    return {"counters": report["counters"], "spans": report["spans"]}


def run_engine_case(case: Dict[str, Any],
                    backends: Sequence[str]) -> Dict[str, Any]:
    """Time one pinned net per backend; cross-check tree signatures."""
    net = make_experiment_net(case["name"], case["sinks"], case["seed"])
    tech = default_technology()
    objective = Objective.max_required_time()
    runs: Dict[str, Any] = {}
    for backend in backends:
        recorder = Recorder()
        config = _with_backend(case["config"], backend).with_(
            recorder=recorder)
        start = time.perf_counter()
        result = merlin(net, tech, config=config, objective=objective)
        wall = time.perf_counter() - start
        runs[backend] = {
            "wall_s": wall,
            "resolved_backend": config.curve.resolved_backend(),
            "cost": objective.cost(result.best.solution),
            "signature": tree_signature(result.tree),
            "iterations": result.iterations,
            "instrument": _trimmed_report(recorder),
        }
        print(f"  {case['name']:12s} backend={backend:7s} "
              f"wall={wall:8.2f}s cost={runs[backend]['cost']:.3f}")
    signatures = {r["signature"] for r in runs.values()}
    out: Dict[str, Any] = {
        "name": case["name"],
        "sinks": case["sinks"],
        "net_seed": case["seed"],
        "kind": "engine",
        "runs": runs,
        "signatures_match": len(signatures) == 1,
    }
    if "python" in runs and "numpy" in runs \
            and runs["numpy"]["resolved_backend"] == "numpy":
        out["numpy_speedup"] = (runs["python"]["wall_s"]
                                / runs["numpy"]["wall_s"])
        print(f"  {case['name']:12s} numpy speedup: "
              f"{out['numpy_speedup']:.2f}x")
    return out


def run_parallel_case(case: Dict[str, Any],
                      worker_counts: Sequence[int],
                      backend: str) -> Dict[str, Any]:
    """Sweep one multi-start workload across worker counts."""
    net = make_experiment_net(case["name"], case["sinks"], case["seed"])
    tech = default_technology()
    config = _with_backend(case["config"], backend)
    runs: Dict[str, Any] = {}
    for workers in worker_counts:
        start = time.perf_counter()
        outcome = parallel.run_multi_start(
            net, tech, config=config, seeds=case["seeds"], workers=workers)
        wall = time.perf_counter() - start
        runs[str(workers)] = {
            "wall_s": wall,
            "signatures": [r.signature for r in outcome.results],
            "best_label": outcome.best.label,
            "best_cost": outcome.best.cost,
            "merged_counters": outcome.report["counters"],
        }
        print(f"  {case['name']:12s} workers={workers} wall={wall:8.2f}s "
              f"best={outcome.best.label}")
    baseline = runs[str(worker_counts[0])]
    invariant = all(
        r["signatures"] == baseline["signatures"]
        and r["best_label"] == baseline["best_label"]
        and r["merged_counters"] == baseline["merged_counters"]
        for r in runs.values())
    return {
        "name": case["name"],
        "sinks": case["sinks"],
        "net_seed": case["seed"],
        "kind": "multi_start",
        "backend": backend,
        "start_labels": [label for label, _ in
                         parallel.multi_start_orders(net, case["seeds"])],
        "runs": runs,
        "worker_invariant": invariant,
    }


def run_service_case(case: Dict[str, Any], backend: str) -> Dict[str, Any]:
    """Measure the batch engine three ways on one pinned net stream.

    * ``cold``: a fresh service (fresh pool, fresh cache) per net — every
      net pays process spawn, the pre-PR-3 cost model;
    * ``warm``: one persistent service streams the whole batch through
      its warm pool (``optimize_many``);
    * ``cache``: the same warm service asked again — every net is a
      canonical-cache hit, no DP at all.

    All three must produce identical tree signatures (checked).
    """
    from repro.service import OptimizationService, ResultCache

    config = _with_backend(case["config"], backend)
    nets = [
        make_experiment_net(f"{case['name']}_n{i}", case["sinks"], 100 + i)
        for i in range(case["n_nets"])
    ]
    tech = default_technology()

    start = time.perf_counter()
    cold_results = []
    for net in nets:
        with OptimizationService(tech=tech, config=config,
                                 cache=ResultCache(),
                                 workers=case["workers"]) as svc:
            cold_results.append(svc.optimize(net))
    cold_wall = time.perf_counter() - start

    warm_service = OptimizationService(tech=tech, config=config,
                                       cache=ResultCache(),
                                       workers=case["workers"])
    with warm_service:
        start = time.perf_counter()
        warm_results = warm_service.optimize_many(nets)
        warm_wall = time.perf_counter() - start
        start = time.perf_counter()
        cache_results = warm_service.optimize_many(nets)
        cache_wall = time.perf_counter() - start
        cache_stats = warm_service.cache.stats()

    all_ok = all(r.ok for r in cold_results + warm_results + cache_results)
    signatures_match = (
        [r.signature for r in cold_results]
        == [r.signature for r in warm_results]
        == [r.signature for r in cache_results])
    all_cached = all(r.cached for r in cache_results)
    out = {
        "name": case["name"],
        "kind": "service",
        "n_nets": len(nets),
        "sinks": case["sinks"],
        "workers": case["workers"],
        "backend": backend,
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "cache_wall_s": cache_wall,
        "warm_speedup": cold_wall / warm_wall if warm_wall > 0 else None,
        "cache_speedup": (warm_wall / cache_wall if cache_wall > 0
                          else None),
        "cache_stats": cache_stats,
        "all_ok": all_ok,
        "all_cached_on_second_pass": all_cached,
        "signatures_match": signatures_match,
        "signatures": [r.signature for r in cold_results],
    }
    print(f"  {case['name']:12s} backend={backend:7s} nets={len(nets)} "
          f"cold={cold_wall:7.2f}s warm={warm_wall:7.2f}s "
          f"cache={cache_wall:7.3f}s "
          f"warm_speedup={out['warm_speedup']:.2f}x")
    return out


def _closure_cases(quick: bool) -> List[Dict[str, Any]]:
    """Timing-closure cases: the full pipeline on a pinned circuit,
    once per ordering policy."""
    if quick:
        return [{
            "name": "closure_b9",
            "circuit": "b9",
            "seed": 1999,
            "config": MerlinConfig.test_preset(),
            "orders": ("criticality", "fanout"),
            "batch": 4,
        }]
    return [{
        "name": "closure_C432",
        "circuit": "C432",
        "seed": 1999,
        "config": MerlinConfig.test_preset(),
        "orders": ("criticality", "fanout", "slack_weighted", "learned"),
        "batch": 6,
    }]


def run_closure_case(case: Dict[str, Any], backend: str) -> Dict[str, Any]:
    """Close timing on one pinned circuit under each ordering policy.

    Besides wall-clock, this checks the pipeline's core contracts: every
    policy converges, and the per-iteration critical delay is monotone
    non-increasing (the worst-slack guarantee).
    """
    from repro.experiments.circuits import resolve_circuit_spec
    from repro.netlist.generator import generate_circuit
    from repro.pipeline import ClosureConfig, run_closure

    config = _with_backend(case["config"], backend)
    spec = resolve_circuit_spec(case["circuit"], case["seed"])
    runs: Dict[str, Any] = {}
    monotone = True
    for order in case["orders"]:
        netlist = generate_circuit(spec)
        start = time.perf_counter()
        result = run_closure(
            netlist, config=config, workers=1,
            closure=ClosureConfig(order=order, batch_size=case["batch"]))
        wall = time.perf_counter() - start
        delays = [it.critical_delay for it in result.iterations]
        monotone &= all(delays[i] >= delays[i + 1] - 1e-6
                        for i in range(len(delays) - 1))
        runs[order] = {
            "wall_s": wall,
            "iterations": result.iterations_to_converge,
            "converged": result.converged,
            "critical_delay": result.critical_delay,
            "worst_slack": result.worst_slack,
            "buffer_area": result.buffer_area,
            "nets_optimized": result.nets_optimized,
            "signatures": result.signatures(),
        }
        print(f"  {case['name']:12s} backend={backend:7s} "
              f"order={order:14s} wall={wall:7.2f}s "
              f"iters={result.iterations_to_converge} "
              f"delay={result.critical_delay:9.1f}ps")
    return {
        "name": case["name"],
        "kind": "closure",
        "circuit": case["circuit"],
        "seed": case["seed"],
        "backend": backend,
        "batch": case["batch"],
        "runs": runs,
        "all_converged": all(r["converged"] for r in runs.values()),
        "monotone": monotone,
    }


def _calibration_s(repeats: int = 3) -> float:
    """Seconds for a fixed pure-Python workload on this machine.

    Used to normalize tracked timings across machines: the workload
    (dict/loop/float churn, roughly the engine's instruction mix) is
    pinned, so its wall-clock measures the host, not the code under
    test.  Best-of-``repeats`` to shed scheduler noise.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0.0
        table: Dict[int, float] = {}
        for i in range(120_000):
            key = (i * 2654435761) % 4093
            acc += table.get(key, 0.0) * 0.5 + (key % 97) * 1e-3
            table[key] = acc % 1000.0
        best = min(best, time.perf_counter() - start)
    return best


def _environment() -> Dict[str, Any]:
    import os
    env = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "numpy": None,
    }
    if contract.numpy_available():
        import numpy
        env["numpy"] = numpy.__version__
    return env


def calibration_seconds(repeats: int = 3) -> float:
    """Public alias of :func:`_calibration_s` for other timing artifacts
    (the serving load harness normalizes its latency claims with the
    same machine-speed probe, so BENCH_*.json files stay comparable)."""
    return _calibration_s(repeats)


def environment_info() -> Dict[str, Any]:
    """Public alias of :func:`_environment` (same cross-artifact reuse)."""
    return _environment()


def run_suite(quick: bool, backends: Sequence[str],
              worker_counts: Sequence[int], tag: str) -> Dict[str, Any]:
    cases: List[Dict[str, Any]] = []
    for case in _engine_cases(quick):
        cases.append(run_engine_case(case, backends))
    # Worker sweeps exercise the parallel driver on the best available
    # backend (that is how multi-start would actually be run).
    par_backend = "numpy" if "numpy" in backends else backends[0]
    for case in _parallel_cases(quick):
        cases.append(run_parallel_case(case, worker_counts, par_backend))
    # Service and closure run once per backend: the tracked timings are
    # backend-qualified, and check_suite pins the trees bit-identical
    # across the per-backend case instances.
    for case in _service_cases(quick):
        for backend in backends:
            cases.append(run_service_case(case, backend))
    for case in _closure_cases(quick):
        for backend in backends:
            cases.append(run_closure_case(case, backend))
    environment = _environment()
    environment["calibration_s"] = _calibration_s()
    return {
        "version": BENCH_VERSION,
        "tag": tag,
        "quick": quick,
        "backends": list(backends),
        "worker_counts": list(worker_counts),
        "environment": environment,
        "cases": cases,
    }


def check_suite(suite: Dict[str, Any]) -> List[str]:
    """Return the list of equivalence failures (empty = all good)."""
    failures = []
    for case in suite["cases"]:
        if case["kind"] == "engine" and not case["signatures_match"]:
            failures.append(
                f"{case['name']}: tree signatures diverge across backends")
        if case["kind"] == "multi_start" and not case["worker_invariant"]:
            failures.append(
                f"{case['name']}: outcome changed with worker count")
        if case["kind"] == "service":
            if not case["signatures_match"]:
                failures.append(
                    f"{case['name']}: cold/warm/cache trees diverge")
            if not case["all_ok"]:
                failures.append(f"{case['name']}: a service job failed")
            if not case["all_cached_on_second_pass"]:
                failures.append(
                    f"{case['name']}: second pass missed the result cache")
        if case["kind"] == "closure":
            if not case["all_converged"]:
                failures.append(
                    f"{case['name']}: a closure policy failed to converge")
            if not case["monotone"]:
                failures.append(
                    f"{case['name']}: critical delay increased across "
                    f"closure iterations")
    # Cross-backend equivalence: when a service/closure case ran once
    # per backend, every instance must produce identical trees.
    service_sigs: Dict[str, set] = {}
    closure_sigs: Dict[str, set] = {}
    for case in suite["cases"]:
        if case["kind"] == "service" and "signatures" in case:
            service_sigs.setdefault(case["name"], set()).add(
                tuple(case["signatures"]))
        if case["kind"] == "closure" and "runs" in case:
            closure_sigs.setdefault(case["name"], set()).add(
                tuple((order, tuple(run["signatures"]))
                      for order, run in sorted(case["runs"].items())))
    for name, sigs in sorted(service_sigs.items()):
        if len(sigs) > 1:
            failures.append(
                f"{name}: service trees diverge across backends")
    for name, sigs in sorted(closure_sigs.items()):
        if len(sigs) > 1:
            failures.append(
                f"{name}: closure trees diverge across backends")
    return failures


def _span_total(spans: Dict[str, Any], leaf: str) -> float:
    """Sum the recorded seconds of every span path ending in ``leaf``
    (span paths are slash-joined nesting chains)."""
    return sum(entry["total_s"] for path, entry in spans.items()
               if path == leaf or path.endswith("/" + leaf))


def tracked_timings(suite: Dict[str, Any]) -> Dict[str, float]:
    """The wall-clock measurements the regression gate watches,
    keyed ``kind/case/variant`` (stable across runs of one suite
    shape).

    Engine cases additionally track two recorder-span aggregates —
    ``star_ptree.run`` (total *PTREE DP time) and ``curves.prune``
    (total kernel prune time) — so a regression inside the DP cannot
    hide behind noise in the end-to-end wall clock.  Service and
    closure keys are backend-qualified (the suite runs those cases once
    per backend).
    """
    timings: Dict[str, float] = {}
    for case in suite["cases"]:
        name = case["name"]
        if case["kind"] == "engine":
            for backend, run in case["runs"].items():
                timings[f"engine/{name}/{backend}"] = run["wall_s"]
                spans = run.get("instrument", {}).get("spans", {})
                ptree = _span_total(spans, "ptree")
                if ptree:
                    timings[f"star_ptree.run/{name}/{backend}"] = ptree
                prune = _span_total(spans, "curves.kernel.prune")
                if prune:
                    timings[f"curves.prune/{name}/{backend}"] = prune
        elif case["kind"] == "multi_start":
            for workers, run in case["runs"].items():
                timings[f"multi_start/{name}/w{workers}"] = run["wall_s"]
        elif case["kind"] == "service":
            backend = case.get("backend", "default")
            timings[f"service/{name}/{backend}/cold"] = case["cold_wall_s"]
            timings[f"service/{name}/{backend}/warm"] = case["warm_wall_s"]
        elif case["kind"] == "closure":
            backend = case.get("backend", "default")
            for order, run in case["runs"].items():
                timings[f"closure/{name}/{backend}/{order}"] = run["wall_s"]
    return timings


def compare_to_baseline(current: Dict[str, Any], baseline: Dict[str, Any],
                        threshold: float = REGRESSION_THRESHOLD,
                        min_seconds: float = MIN_TRACKED_SECONDS,
                        ) -> List[str]:
    """Regressions of ``current`` vs ``baseline`` (empty = gate passes).

    Every baseline timing is first rescaled by the machines'
    calibration ratio (see :func:`_calibration_s`), so a uniformly
    slower host does not read as a code regression; only timings above
    ``min_seconds`` on both sides participate.  Keys present in only
    one suite are ignored — shape changes are reviewed via the JSON
    diff, not the gate.
    """
    current_cal = current.get("environment", {}).get("calibration_s")
    baseline_cal = baseline.get("environment", {}).get("calibration_s")
    scale = (current_cal / baseline_cal
             if current_cal and baseline_cal else 1.0)
    current_t = tracked_timings(current)
    baseline_t = tracked_timings(baseline)
    failures = []
    for key in sorted(set(current_t) & set(baseline_t)):
        allowed = baseline_t[key] * scale
        if allowed < min_seconds or current_t[key] < min_seconds:
            continue
        if current_t[key] > allowed * (1.0 + threshold):
            failures.append(
                f"{key}: {current_t[key]:.3f}s vs allowed "
                f"{allowed * (1.0 + threshold):.3f}s (baseline "
                f"{baseline_t[key]:.3f}s x calibration {scale:.2f})")
    return failures


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the bench suite's arguments on ``parser`` (shared by
    ``python -m repro.bench`` and the ``merlin-repro bench``
    subcommand)."""
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized subset (small net, seconds not "
                             "minutes)")
    parser.add_argument("--tag", default="local",
                        help="suffix of the BENCH_<tag>.json output")
    parser.add_argument("--out", default=None,
                        help="explicit output path (default "
                             "BENCH_<tag>.json in the current directory)")
    parser.add_argument("--backends", default=None,
                        help="comma-separated backend list (default: "
                             "python,numpy when numpy is available)")
    parser.add_argument("--workers", default="1,2",
                        help="comma-separated worker counts for the "
                             "multi-start sweep (default 1,2)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="compare tracked timings against this "
                             "committed BENCH_*.json snapshot "
                             "(calibration-normalized) and fail on "
                             ">20%% regressions")
    parser.add_argument("--profile", type=int, default=0, metavar="N",
                        help="run the suite under cProfile and report "
                             "the top N functions by cumulative time "
                             "(0 = off)")
    parser.add_argument("--profile-format", choices=["text", "json"],
                        default="text",
                        help="profile report format (default text)")


def profile_rows(profiler, top: int) -> List[Dict[str, Any]]:
    """Top ``top`` functions of a finished cProfile run, by cumulative
    time — plain dicts so callers can render text or JSON."""
    import pstats

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    stats.calc_callees()
    rows: List[Dict[str, Any]] = []
    for func in stats.fcn_list[:top]:
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, line, name = func
        rows.append({
            "function": name,
            "file": filename,
            "line": line,
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        })
    return rows


def _emit_profile(profiler, top: int, fmt: str) -> None:
    rows = profile_rows(profiler, top)
    if fmt == "json":
        print(json.dumps({"version": 1, "sort": "cumulative",
                          "rows": rows}, indent=2))
        return
    print(f"profile: top {len(rows)} functions by cumulative time")
    print(f"{'cumtime':>9s} {'tottime':>9s} {'ncalls':>9s}  function")
    for row in rows:
        where = f"{row['file']}:{row['line']}" if row["line"] else row["file"]
        print(f"{row['cumtime_s']:9.3f} {row['tottime_s']:9.3f} "
              f"{row['ncalls']:9d}  {row['function']}  ({where})")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="MERLIN pinned benchmark suite")
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv), parser)


def run_from_args(args, parser: Optional[argparse.ArgumentParser] = None,
                  ) -> int:
    def _error(message: str) -> int:
        if parser is not None:
            parser.error(message)  # raises SystemExit
        print(f"error: {message}", file=sys.stderr)
        return 2

    if args.backends:
        backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    elif contract.numpy_available():
        backends = ["python", "numpy"]
    else:
        backends = ["python"]
    for backend in backends:
        if backend not in contract.BACKENDS:
            return _error(f"unknown backend {backend!r}")
    worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]

    profiler = None
    if args.profile > 0:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        suite = run_suite(args.quick, backends, worker_counts, args.tag)
    finally:
        if profiler is not None:
            profiler.disable()
    if profiler is not None:
        _emit_profile(profiler, args.profile, args.profile_format)
    out_path = args.out or f"BENCH_{args.tag}.json"
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(suite, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")

    failures = check_suite(suite)
    for failure in failures:
        print(f"EQUIVALENCE FAILURE: {failure}", file=sys.stderr)

    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return 1
        regressions = compare_to_baseline(suite, baseline)
        for regression in regressions:
            print(f"TIMING REGRESSION: {regression}", file=sys.stderr)
        if not regressions:
            print(f"timing gate passed against {args.baseline} "
                  f"({len(tracked_timings(suite))} tracked timings)")
        failures.extend(regressions)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
