"""MERLIN: the outer local-neighborhood-search engine (Figure 14).

MERLIN repeatedly calls BUBBLE_CONSTRUCT; each call optimizes over the
whole neighborhood ``N(Π)`` of the current order and returns the order
realized by its best tree.  When that order differs from the input the
search has moved to a strictly better neighbor (Theorem 7) and iterates;
when it is unchanged a local optimum over the neighborhood structure has
been reached and the loop stops.

Implementation notes:

* The loop is additionally bounded by ``config.max_iterations`` (the paper
  bounds it by 3 in the Table 2 flow) and by a numeric
  strict-improvement check — with quantized curves a cosmetic order change
  at equal cost could otherwise cycle.
* The :class:`~repro.core.star_ptree.PTreeContext` (candidate geometry,
  sink base-curve caches) is shared across iterations, the practical core
  of the paper's keep-last-iteration's-curves speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.bubble_construct import (
    BubbleConstructResult,
    bubble_construct,
    make_context,
)
from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.instrument import names as metric
from repro.instrument.recorder import active_recorder, use_recorder
from repro.net import Net
from repro.orders.order import Order
from repro.orders.tsp import tsp_order
from repro.routing.tree import RoutingTree
from repro.tech.technology import Technology

#: Minimum cost improvement (ps or um^2, depending on the objective)
#: counted as progress; protects the loop against quantization noise.
_IMPROVEMENT_EPS = 1e-9


@dataclass
class MerlinResult:
    """The outcome of a full MERLIN run on one net."""

    #: Best tree found across all iterations.
    tree: RoutingTree
    #: The inner result that produced :attr:`tree`.
    best: BubbleConstructResult
    #: Number of BUBBLE_CONSTRUCT invocations ("Loops" column of Table 1).
    iterations: int
    #: True when the loop stopped at an order fixed point (rather than the
    #: iteration cap).
    converged: bool
    #: Objective cost after each iteration (strictly decreasing until the
    #: final visit, per Theorem 7).
    cost_trace: List[float] = field(default_factory=list)
    #: The sink order at the start of each iteration.
    order_trace: List[Order] = field(default_factory=list)


def merlin(net: Net, tech: Technology,
           config: Optional[MerlinConfig] = None,
           objective: Optional[Objective] = None,
           initial_order: Optional[Order] = None) -> MerlinResult:
    """Run MERLIN on ``net``; see module docstring.

    ``initial_order`` defaults to the TSP order, matching the paper's
    experimental setup (which also reports that the initial order has very
    little effect on the final quality — ablation E4 reproduces this).
    """
    config = config or MerlinConfig()
    objective = objective or Objective.max_required_time()
    rec = config.recorder if config.recorder is not None \
        else active_recorder()
    with use_recorder(rec), rec.span(metric.SPAN_MERLIN):
        order = initial_order or tsp_order(net)
        context = make_context(net, tech, config)

        best: Optional[BubbleConstructResult] = None
        best_cost = float("inf")
        cost_trace: List[float] = []
        order_trace: List[Order] = []
        converged = False
        iterations = 0

        budget = config.budget
        while iterations < config.max_iterations:
            if budget is not None:
                # One charge per outer iteration; the inner DP charges
                # the same budget per cell/range, so exhaustion can land
                # mid-iteration too.
                budget.charge(1, what="merlin.iteration")
            iterations += 1
            order_trace.append(order)
            result = bubble_construct(net, order, tech, config=config,
                                      objective=objective, context=context)
            cost = objective.cost(result.solution)
            cost_trace.append(cost)
            improved = cost < best_cost - _IMPROVEMENT_EPS
            if improved:
                best = result
                best_cost = cost
            if rec.enabled:
                rec.incr(metric.MERLIN_ITERATIONS)
                rec.record(metric.MERLIN_ITERATION_COST, cost)
                rec.event(metric.EVENT_MERLIN_ITERATION,
                          index=iterations, cost=cost,
                          order=list(order.seq),
                          order_out=list(result.order_out.seq),
                          improved=improved,
                          constraint_met=result.constraint_met)
            if result.order_out.seq == order.seq:
                converged = True
                break
            if not improved and best is not None:
                # The neighbor's optimum is no better than what we already
                # hold; by Theorem 7 this only happens at the final visit.
                converged = True
                break
            order = result.order_out

        assert best is not None  # the loop always runs at least once
        if rec.enabled:
            rec.event(metric.EVENT_MERLIN_RESULT,
                      net=net.name, sinks=len(net),
                      iterations=iterations, converged=converged,
                      best_cost=best_cost)
    return MerlinResult(
        tree=best.tree,
        best=best,
        iterations=iterations,
        converged=converged,
        cost_trace=cost_trace,
        order_trace=order_trace,
    )
