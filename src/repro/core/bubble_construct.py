"""BUBBLE_CONSTRUCT: the inner optimization engine (Figure 9).

Given a net, an initial sink order Π, a candidate set P and a buffer
library B, BUBBLE_CONSTRUCT computes — in one bottom-up dynamic program —
the non-inferior set of hierarchical buffered routing trees over the
*entire neighborhood* ``N(Π)`` of sink orders (Theorem 4), where the
hierarchy is a Cα_Tree and each hierarchy level is routed by *PTREE.

Table layout
------------
``Γ[(l, e, r)][c]`` is the solution curve for the sub-group of ``l`` sinks
with grouping structure ``e`` whose span ends at order position ``r``
(0-based), rooted at candidate index ``c``.  Construction proceeds by
increasing ``l``; a parent group Ω of ``L`` sinks absorbs exactly one
already-built child group ω (possibly a single sink) plus the remaining
``L - l ≤ α - 1`` sinks of its level, routed in the effective bubble-out
order by *PTREE (see :mod:`repro.core.grouping`).

Identical level sub-problems shared between neighboring orders are
computed once (Lemma 7) via a memo keyed by the level's leaf identity.

Cross-iteration sharing
-----------------------
MERLIN's outer loop re-runs BUBBLE_CONSTRUCT with a (usually slightly)
changed order against the same :class:`PTreeContext`.  Both the Γ table
and the range memo are therefore additionally keyed by *content* on the
shared context: a sink's content is its fingerprint ``(index, x, y,
load, required_time)``, and a group cell's content is — inductively —
its ``(size, e)`` plus the ordered fingerprints of its member sinks
(group validity, the level plan, and the active-candidate box are all
parent-relative, so nothing else can influence the cell).  When a new
iteration presents a group whose member fingerprints are unchanged, its
Γ slice (and any sub-range) is reused without touching the DP — the
paper's "keep the curves of the last iteration" speed-up applied at
every table granularity.  Mutating a sink changes its fingerprint and
invalidates exactly the cells that contain it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MerlinConfig
from repro.core.grouping import (
    Group,
    child_sizes,
    enumerate_groups,
    level_plan,
)
from repro.core.objective import Objective
from repro.core.star_ptree import LeafCurves, PTreeContext
from repro.instrument import names as metric
from repro.instrument.recorder import active_recorder, use_recorder
from repro.curves.solution import DriverArm, Solution
from repro.geometry.candidates import generate_candidates
from repro.geometry.point import Point
from repro.net import Net
from repro.orders.order import Order
from repro.routing.builder import build_tree
from repro.routing.sink_order import extract_sink_order
from repro.routing.tree import RoutingTree
from repro.tech.technology import Technology


@dataclass
class BubbleConstructResult:
    """Everything one BUBBLE_CONSTRUCT invocation produces."""

    #: The extracted best tree (line 23).
    tree: RoutingTree
    #: The winning final solution (line 21).
    solution: Solution
    #: The sink order realized by the tree — possibly a neighbor of the
    #: input order; MERLIN feeds this into the next iteration.
    order_out: Order
    #: The full final non-inferior curve at the driver (for trade-off plots
    #: and for variant II area scans).
    final_solutions: List[Solution]
    #: True when the winning solution satisfies the objective's constraint;
    #: False means no curve point was feasible and the reported solution is
    #: the unconstrained best.
    constraint_met: bool
    #: Instrumentation: table cells, *PTREE invocations, memo hits.
    stats: Dict[str, int] = field(default_factory=dict)


def bubble_construct(net: Net, order: Order, tech: Technology,
                     config: Optional[MerlinConfig] = None,
                     objective: Optional[Objective] = None,
                     context: Optional[PTreeContext] = None,
                     ) -> BubbleConstructResult:
    """Run BUBBLE_CONSTRUCT on ``net`` with initial order ``order``.

    Parameters
    ----------
    context:
        A prepared :class:`PTreeContext`; pass the same one across MERLIN
        iterations to reuse the candidate geometry and sink base-curve
        caches (the paper's "keep the solution curves of the very last
        iteration" speed-up, applied at the base-curve level where the
        sharing is exact).
    """
    config = config or MerlinConfig()
    objective = objective or Objective.max_required_time()
    n = len(net)
    if len(order) != n:
        raise ValueError(f"order has {len(order)} elements, net has {n} sinks")
    context = context or make_context(net, tech, config)

    rec = config.recorder if config.recorder is not None \
        else active_recorder()
    with use_recorder(rec), rec.span(metric.SPAN_BUBBLE_CONSTRUCT):
        engine = _Engine(net, order, config, context)
        gamma_final = engine.run()
        with rec.span(metric.SPAN_FINALIZE):
            final = _finalize(net, context, gamma_final)
    if rec.enabled:
        rec.incr(metric.BUBBLE_CELLS, engine.stats["cells"])
        rec.incr(metric.BUBBLE_RANGES, engine.stats["ranges"])
        rec.incr(metric.BUBBLE_RANGE_MEMO_HITS,
                 engine.stats["range_memo_hits"])
        rec.incr(metric.BUBBLE_LEVELS, engine.stats["levels"])
        rec.incr(metric.BUBBLE_GAMMA_MEMO_HITS,
                 engine.stats["gamma_memo_hits"])
    for curve_solutions in (final,):
        if not curve_solutions:
            raise RuntimeError(
                f"net {net.name}: empty final solution curve — the candidate "
                "set or curve capacity is too small")

    best = objective.select(final)
    constraint_met = best is not None
    if best is None:
        # Constraint unreachable: report the best-trade-off solution (near
        # the curve's best required time at the least area) rather than
        # the raw maximum, which may pay hundreds of um^2 for noise-level
        # required-time gains.
        best = Objective.best_tradeoff(tolerance=25.0).select(final)
    tree = build_tree(net, best)
    return BubbleConstructResult(
        tree=tree,
        solution=best,
        order_out=Order.from_sequence(extract_sink_order(tree)),
        final_solutions=final,
        constraint_met=constraint_met,
        stats=engine.stats,
    )


def make_context(net: Net, tech: Technology,
                 config: MerlinConfig) -> PTreeContext:
    """Build the per-net :class:`PTreeContext` (candidates + tech prep)."""
    candidates = generate_candidates(
        net.source, net.sink_positions,
        strategy=config.candidate_strategy,
        max_candidates=config.max_candidates,
    )
    if net.source not in candidates:
        candidates.append(net.source)
    if config.library_subset is not None:
        tech = tech.with_buffers(tech.buffers.subset(config.library_subset))
    return PTreeContext(candidates, tech, config.curve,
                        config.relocation_rounds,
                        wire_widths=config.wire_width_options)


class _Engine:
    """One DP run: owns the Γ table and the cross-level range memos.

    Lemma 7 says identical sub-problems among neighborhood members are
    processed once.  The engine realizes that with *range memoization*:
    every *PTREE sub-range is keyed by its leaf content — the sink
    fingerprint for a sink leaf, the group's ``(size, e)`` plus ordered
    member fingerprints for a sub-group leaf — so contiguous sink runs
    and group contexts shared between different hierarchy levels, different
    grouping structures, *and different MERLIN iterations* are computed
    once.  Both memos (ranges, and whole Γ cells in
    :meth:`_build_parent`) live on the shared :class:`PTreeContext`; the
    content keys make the sharing exact — see the module docstring.
    """

    #: Soft cap on each context-attached memo; cleared wholesale when
    #: exceeded (keys are content tuples, so there is no useful LRU
    #: structure worth maintaining at this size).
    MEMO_CAP = 50_000

    def __init__(self, net: Net, order: Order, config: MerlinConfig,
                 context: PTreeContext):
        self.net = net
        self.order = order
        self.config = config
        self.context = context
        #: Cooperative compute budget; charged once per parent cell and
        #: per computed range, the DP's natural units of work.
        self.budget = config.budget
        self.stats: Dict[str, int] = {
            "cells": 0, "ranges": 0, "range_memo_hits": 0, "levels": 0,
            "gamma_memo_hits": 0,
        }
        self.rec = active_recorder()
        if config.active_margin_frac is None:
            self._margin = None
        else:
            self._margin = (config.active_margin_frac
                            * net.bounding_box.half_perimeter)
        try:
            self._source_index: Optional[int] = \
                context.candidates.index(net.source)
        except ValueError:
            self._source_index = None
        # Γ[(l, e, r)] -> frozen per-candidate solution lists.
        self.gamma: Dict[Tuple[int, int, int], List[List[Solution]]] = {}
        if not hasattr(context, "range_memo"):
            context.range_memo = {}  # type: ignore[attr-defined]
        if not hasattr(context, "gamma_memo"):
            context.gamma_memo = {}  # type: ignore[attr-defined]
        if not hasattr(context, "sink_base_cache"):
            context.sink_base_cache = {}  # type: ignore[attr-defined]
        self._range_memo: Dict[tuple, List[List[Solution]]] = \
            context.range_memo  # type: ignore[attr-defined]
        self._gamma_memo: Dict[tuple, List[List[Solution]]] = \
            context.gamma_memo  # type: ignore[attr-defined]
        self._sink_base: Dict[tuple, LeafCurves] = \
            context.sink_base_cache  # type: ignore[attr-defined]
        n = len(net)
        #: Per-sink content fingerprints: identity, geometry, and timing —
        #: everything a sink contributes to any curve containing it.
        self._fps: List[tuple] = []
        for i in range(n):
            sink = net.sink(i)
            self._fps.append((i, sink.position.x, sink.position.y,
                              sink.load, sink.required_time))
        #: Everything else a cell's content can depend on.  The curve
        #: config, candidate set, wire widths, and tech are fixed per
        #: context; the per-run knobs are the group-shape parameters and
        #: the active-box margin (``relocation_rounds`` lives on the
        #: context itself).
        self._salt = (n, config.alpha, config.enable_bubbling, self._margin)
        #: Per-run cache: leaf id -> content id (the group translation
        #: walks member positions, so amortize it per run).
        self._content_ids: Dict[tuple, tuple] = {}

    # -- content keys ---------------------------------------------------

    def _content_id(self, leaf_id: tuple) -> tuple:
        """Order-independent content of one range leaf."""
        cached = self._content_ids.get(leaf_id)
        if cached is None:
            if leaf_id[0] == "s":
                cached = ("s", self._fps[leaf_id[1]])
            else:
                _, size, e, r = leaf_id
                group = Group(size=size, e=e, r=r)
                fps = self._fps
                order = self.order
                cached = ("g", size, e, tuple(
                    fps[order[q]] for q in group.member_positions))
            self._content_ids[leaf_id] = cached
        return cached

    def _group_content_key(self, group: Group) -> tuple:
        """Content key of one Γ cell (see the module docstring)."""
        fps = self._fps
        order = self.order
        return (self._salt, group.size, group.e,
                tuple(fps[order[q]] for q in group.member_positions))

    # -- base curves ---------------------------------------------------

    def sink_base(self, sink_index: int) -> LeafCurves:
        fp = self._fps[sink_index]
        cached = self._sink_base.get(fp)
        if cached is None:
            sink = self.net.sink(sink_index)
            cached = self.context.sink_base_curves(
                sink_index, sink.position, sink.load, sink.required_time)
            self._sink_base[fp] = cached
        return cached

    # -- DP ------------------------------------------------------------

    def run(self) -> List[List[Solution]]:
        n = len(self.net)
        bubbling = self.config.enable_bubbling
        # INITIALIZATION (lines 1-4): single-sink groups for every valid
        # grouping structure and span position.
        for group in enumerate_groups(n, 1, bubbling):
            position = group.member_positions[0]
            self.gamma[_key(group)] = self.sink_base(self.order[position])
            self.stats["cells"] += 1

        # CONSTRUCTION (lines 5-20).
        for parent_size in range(2, n + 1):
            for parent in enumerate_groups(n, parent_size, bubbling):
                self._build_parent(parent)
        return self.gamma[(n, 0, n - 1)]

    def _build_parent(self, parent: Group) -> None:
        rec = self.rec
        memo = self._gamma_memo
        mkey = self._group_content_key(parent)
        cached = memo.get(mkey)
        if cached is not None:
            # Unchanged member fingerprints: the whole cell (including
            # every level routing below it) is reused from a previous
            # iteration; no budget is charged, like range-memo hits.
            self.gamma[_key(parent)] = cached
            self.stats["gamma_memo_hits"] += 1
            if rec.enabled:
                rec.incr(metric.BUBBLE_GAMMA_MEMO_HITS)
            return
        if self.budget is not None:
            self.budget.charge(1, what="bubble.cell")
        curves = self.context.new_curves()
        contributed = False
        for child_size in child_sizes(parent.size, self.config.alpha):
            for child in self._children(parent, child_size):
                plan = level_plan(parent, child)
                if plan is None:
                    continue
                child_gamma = self.gamma.get(_key(child))
                if child_gamma is None:
                    continue
                result = self._route_level(plan, child)
                contributed = True
                if rec.enabled and child.e != 0:
                    rec.incr(metric.BUBBLE_NEIGHBORHOOD_HITS)
                for curve, solutions in zip(curves, result):
                    curve.extend(solutions)
        if not contributed:
            return
        if rec.enabled:
            pre = sum(len(curve) for curve in curves)
        for curve in curves:
            curve.prune()
        blocks = self.context.freeze_curves(curves)
        self.gamma[_key(parent)] = blocks
        if len(memo) >= self.MEMO_CAP:
            memo.clear()
        memo[mkey] = blocks
        self.stats["cells"] += 1
        if rec.enabled:
            post = sum(len(curve) for curve in curves)
            rec.record(metric.BUBBLE_CURVE_SIZE_PRE, pre)
            rec.record(metric.BUBBLE_CURVE_SIZE_POST, post)
            rec.record(metric.BUBBLE_PRUNE_RATIO,
                       post / pre if pre else 1.0)
            rec.record(metric.level_curve_size_pre(parent.size), pre)
            rec.record(metric.level_curve_size_post(parent.size), post)

    def _children(self, parent: Group, child_size: int):
        """Valid child groups whose span lies inside the parent's span."""
        codes = (0, 1, 2, 3) if self.config.enable_bubbling else (0,)
        from repro.core.grouping import make_group

        n = len(self.net)
        for e in codes:
            for r in range(parent.span_left, parent.r + 1):
                child = make_group(r, child_size, e, n)
                if child is not None and child.span_left >= parent.span_left:
                    yield child

    def _route_level(self, plan, child: Group) -> List[List[Solution]]:
        """Route one hierarchy level through the memoized range DP."""
        leaf_ids: List[tuple] = []
        for kind, q in plan.leaves:
            if kind == "sink":
                leaf_ids.append(("s", self.order[q]))
            else:
                leaf_ids.append(("g",) + _key(child))
        self.stats["levels"] += 1
        # Top-level span per hierarchy level; the recursion below it is
        # untimed so nested ranges are not double-counted.
        with self.rec.span(metric.SPAN_PTREE):
            return self._range(tuple(leaf_ids))

    def _range(self, leaf_ids: tuple) -> List[List[Solution]]:
        """S(·, i, j) for a leaf run, shared across all levels (Lemma 7)."""
        if len(leaf_ids) == 1:
            kind = leaf_ids[0][0]
            if kind == "s":
                return self.sink_base(leaf_ids[0][1])
            return self.gamma[leaf_ids[0][1:]]

        memo = self._range_memo
        content_id = self._content_id
        mkey = (self._salt,) + tuple(content_id(part) for part in leaf_ids)
        cached = memo.get(mkey)
        if cached is not None:
            self.stats["range_memo_hits"] += 1
            return cached

        if self.budget is not None:
            self.budget.charge(1, what="bubble.range")
        active = self._active_for(leaf_ids)
        curves = self.context.new_curves()
        for u in range(1, len(leaf_ids)):
            self.context.join_into(curves, self._range(leaf_ids[:u]),
                                   self._range(leaf_ids[u:]), active)
        self.context.finish_range(curves, active)
        result = self.context.freeze_curves(curves)
        if len(memo) >= self.MEMO_CAP:
            memo.clear()
        memo[mkey] = result
        self.stats["ranges"] += 1
        return result

    def _active_for(self, leaf_ids: tuple) -> Optional[List[int]]:
        """Active candidate indices for a range (None = all)."""
        if self._margin is None:
            return None
        positions: List[Point] = []
        for part in leaf_ids:
            if part[0] == "s":
                positions.append(self.net.sink(part[1]).position)
            else:
                group = Group(size=part[1], e=part[2], r=part[3])
                positions.extend(
                    self.net.sink(self.order[q]).position
                    for q in group.member_positions)
        active = self.context.active_indices(positions, self._margin)
        if (self._source_index is not None
                and self._source_index not in active):
            active.append(self._source_index)
        return active


def _key(group: Group) -> Tuple[int, int, int]:
    return (group.size, group.e, group.r)


def _finalize(net: Net, context: PTreeContext,
              gamma_final: List[List[Solution]]) -> List[Solution]:
    """Lines 21: extend every final curve point to the source and apply the
    driver's gate delay; return the driver-level non-inferior curve."""
    from repro.curves.curve import SolutionCurve
    from repro.curves.ops import extend_solution

    tech = context.tech
    source = net.source
    curve = SolutionCurve(source, context.curve_config)
    for idx, solutions in enumerate(gamma_final):
        for solution in solutions:
            at_source = extend_solution(solution, source, tech)
            delay = tech.driver_delay(
                at_source.load,
                drive_resistance=net.driver_resistance,
                intrinsic=net.driver_intrinsic,
            )
            final = Solution(
                root=source,
                load=at_source.load,
                required_time=at_source.required_time - delay,
                area=at_source.area,
                detail=DriverArm(child=at_source,
                                 wire_length=source.manhattan_to(
                                     solution.root)),
            )
            curve.add(final)
    curve.prune()
    return curve.solutions
