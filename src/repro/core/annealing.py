"""Simulated-annealing order search: the paper's generalization hook.

Section II observes that *"simulated annealing is a special case of local
neighborhood search that sometimes allows uphill moves"*.  MERLIN itself
takes the strict-descent path; this module implements the uphill-capable
variant as an extension: a Metropolis loop over sink orders whose move set
is the adjacent swap (the generator of the paper's neighborhood) and whose
energy is the BUBBLE_CONSTRUCT objective cost.

Because each energy evaluation is a full BUBBLE_CONSTRUCT run, the default
schedule is short; the point of the extension is to escape the (rare)
local optima the descent loop can get stuck in, and the ablation benchmark
measures whether that ever pays on the experiment nets (spoiler: seldom —
which is itself a reproduction-relevant finding, since the paper reports
quick convergence from arbitrary seeds).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.bubble_construct import (
    BubbleConstructResult,
    bubble_construct,
    make_context,
)
from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.net import Net
from repro.orders.order import Order
from repro.orders.tsp import tsp_order
from repro.tech.technology import Technology


@dataclass
class AnnealingResult:
    """Outcome of one simulated-annealing run."""

    best: BubbleConstructResult
    iterations: int
    accepted_moves: int
    uphill_moves: int
    cost_trace: List[float] = field(default_factory=list)


def annealed_merlin(net: Net, tech: Technology,
                    config: Optional[MerlinConfig] = None,
                    objective: Optional[Objective] = None,
                    initial_order: Optional[Order] = None,
                    iterations: int = 12,
                    start_temperature: float = 50.0,
                    cooling: float = 0.8,
                    seed: int = 0) -> AnnealingResult:
    """Metropolis search over sink orders with BUBBLE_CONSTRUCT energies.

    Parameters
    ----------
    iterations:
        Number of proposed moves (each costs one BUBBLE_CONSTRUCT run).
    start_temperature:
        Initial temperature in cost units (ps for variant I, um^2 for
        variant II); uphill moves of ΔE are accepted with exp(-ΔE/T).
    cooling:
        Geometric cooling factor applied after every proposal.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if not 0.0 < cooling <= 1.0:
        raise ValueError("cooling must be in (0, 1]")
    if start_temperature <= 0.0:
        raise ValueError("start_temperature must be positive")

    config = config or MerlinConfig()
    objective = objective or Objective.max_required_time()
    rng = random.Random(seed)
    order = initial_order or tsp_order(net)
    context = make_context(net, tech, config)

    current = bubble_construct(net, order, tech, config=config,
                               objective=objective, context=context)
    current_cost = objective.cost(current.solution)
    # The inner engine already explored N(order); adopt its improvement.
    order = current.order_out
    best = current
    best_cost = current_cost

    temperature = start_temperature
    accepted = 0
    uphill = 0
    trace = [current_cost]

    for _ in range(iterations):
        proposal_order = _propose(order, rng)
        proposal = bubble_construct(net, proposal_order, tech, config=config,
                                    objective=objective, context=context)
        proposal_cost = objective.cost(proposal.solution)
        trace.append(proposal_cost)
        delta = proposal_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            if delta > 0:
                uphill += 1
            accepted += 1
            current, current_cost = proposal, proposal_cost
            order = proposal.order_out
        if current_cost < best_cost:
            best, best_cost = current, current_cost
        temperature *= cooling

    return AnnealingResult(
        best=best,
        iterations=iterations,
        accepted_moves=accepted,
        uphill_moves=uphill,
        cost_trace=trace,
    )


def _propose(order: Order, rng: random.Random) -> Order:
    """One random adjacent swap — the neighborhood's generator move."""
    if len(order) < 2:
        return order
    return order.swapped(rng.randrange(len(order) - 1))
