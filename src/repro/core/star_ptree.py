"""*PTREE: the buffered P-Tree dynamic program (section 3.2.3).

Given an ordered list of *leaves* — sinks, or the virtual leaf of a nested
sub-group — and a candidate-location set P, *PTREE computes, for every
``p ∈ P``, the three-dimensional non-inferior solution curve of buffered
rectilinear routing trees rooted at ``p`` that drive all leaves in order.
It is the routing engine of every Cα_Tree hierarchy level inside
BUBBLE_CONSTRUCT, and (run once over all sinks with the virtual leaf absent)
also serves as a standalone buffered router.

The recursion follows the paper:

* base — every leaf provides a per-candidate base curve (for a sink: the
  wire from the candidate to the pin, with or without a buffer; for a
  sub-group: the group's Γ slice);
* join — ``S_b(p,i,j) = min over u { S(p,i,u) + S(p,u+1,j) }``;
* relocation — ``S(p,i,j) = min over p' { d(p,p') + S(p',i,j) }``,
  implemented as a bounded number of relaxation passes (DESIGN.md
  substitution #6);
* buffering — each sub-solution root may be driven by any library buffer
  (that is the ``*``); inferior options are pruned per Definition 6.

This module is the library's hottest code path, but it no longer owns
the inner loops: every curve operation goes through the registered
:class:`repro.curves.contract.CurveKernel` backend selected by
``CurveConfig.backend`` — scalar ``SolutionCurve`` loops
(:mod:`repro.curves.backend_python`) or deferred structure-of-arrays
blocks (:mod:`repro.curves.backend_numpy`), bit-identical by contract.
What stays here is the DP structure and the per-net precomputation:
tables indexed by candidate *index*, wire resistances/capacitances
between candidates precomputed, per-buffer delays precomputed as affine
coefficients in the load (both shipped gate-delay models are affine in
load, as Elmore-style models must be for this factorization; a custom
non-affine model would need to drop this fast path).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.curves import contract
from repro.curves.contract import BufferParams
from repro.curves.curve import CurveConfig, SolutionCurve
from repro.curves.solution import Extend, Solution, sink_leaf_solution
from repro.geometry.point import Point
from repro.instrument import names as metric
from repro.instrument.recorder import active_recorder
from repro.tech.buffer import Buffer
from repro.tech.technology import Technology
from repro.units import fzero

#: A leaf's base solutions, indexed by candidate index.  Each entry is a
#: frozen curve block in the active kernel's format: a plain list
#: (python backend) or a deferred
#: :class:`repro.curves.kernels.CurveSoA` block (numpy backend).
LeafCurves = List[Sequence[Solution]]

#: Backwards-compatible alias (the tuple layout moved to the contract).
_BufferParams = BufferParams


class PTreeContext:
    """Precomputed per-net state shared by every *PTREE invocation.

    Holds the candidate set, the pairwise wire resistance/capacitance
    matrices, the (possibly thinned) buffer list with per-buffer delay
    coefficients, the curve configuration, and the resolved kernel
    backend with its preprocessed library.  BUBBLE_CONSTRUCT creates
    one context per net and reuses it across all hierarchy levels and all
    MERLIN iterations (the candidate set does not change between
    iterations).
    """

    def __init__(self, candidates: Sequence[Point], tech: Technology,
                 curve_config: CurveConfig, relocation_rounds: int = 1,
                 use_buffers: bool = True,
                 wire_widths: Sequence[float] = (1.0,)):
        if not candidates:
            raise ValueError("candidate set must not be empty")
        if relocation_rounds < 0:
            raise ValueError("relocation_rounds must be >= 0")
        if not wire_widths or any(w <= 0 for w in wire_widths):
            raise ValueError("wire_widths must be positive and non-empty")
        self.candidates: List[Point] = list(candidates)
        self.tech = tech
        self.curve_config = curve_config
        self.relocation_rounds = relocation_rounds
        self.wire_widths: Tuple[float, ...] = tuple(wire_widths)
        #: The registered kernel backend running every curve operation.
        self.kernel = contract.get_kernel(curve_config.backend)
        #: Resolved once; kept for callers that branch on the backend.
        self.use_numpy = self.kernel.name == "numpy"
        # With buffering disabled the DP degenerates to plain PTREE
        # [LCLH96] — the routing baseline of Flows I and II.
        buffers = list(tech.buffers) if use_buffers else []
        self.buffer_params: List[BufferParams] = [
            _affine_params(b, tech) for b in buffers
        ]
        #: Preprocessed buffer library (affine params, quantized cap
        #: keys, Li & Shi shadow table, backend column vectors).
        self.library = self.kernel.make_library(self.buffer_params,
                                                curve_config)
        k = len(self.candidates)
        self.wire_res: List[List[float]] = [[0.0] * k for _ in range(k)]
        self.wire_cap: List[List[float]] = [[0.0] * k for _ in range(k)]
        res_per_um = tech.wire.resistance_per_um
        cap_per_um = tech.wire.capacitance_per_um
        for i, a in enumerate(self.candidates):
            for j, b in enumerate(self.candidates):
                length = a.manhattan_to(b)
                self.wire_res[i][j] = res_per_um * length
                self.wire_cap[i][j] = cap_per_um * length

    @property
    def k(self) -> int:
        return len(self.candidates)

    @property
    def buffers(self) -> List[Buffer]:
        return [params[0] for params in self.buffer_params]

    def new_curves(self) -> List[SolutionCurve]:
        """One empty live curve per candidate, in the kernel's format."""
        kernel = self.kernel
        config = self.curve_config
        return [kernel.new_curve(p, config) for p in self.candidates]

    def freeze_curves(self, curves: List[SolutionCurve]) -> LeafCurves:
        """Freeze live curves into per-candidate frozen blocks.

        The python backend freezes to plain solution lists; the numpy
        backend to deferred :class:`~repro.curves.kernels.CurveSoA`
        blocks — no :class:`Solution` is constructed, and the attribute
        vectors are built lazily and reused by every later join.
        """
        kernel = self.kernel
        return [kernel.freeze(curve) for curve in curves]

    def traceback_curves(self, blocks: LeafCurves) -> List[List[Solution]]:
        """Materialize frozen blocks into plain solution lists."""
        kernel = self.kernel
        return [kernel.traceback(block) for block in blocks]

    def thaw_curves(self, curves) -> List[SolutionCurve]:
        """Hand live curves back to backend-agnostic callers.

        The numpy backend's pending curves are materialized into
        equivalent :class:`SolutionCurve` instances (same buckets, same
        dict order); python-backend curves pass through unchanged.
        """
        kernel = self.kernel
        return [kernel.thaw(curve) for curve in curves]

    # ------------------------------------------------------------------
    # Base-curve construction
    # ------------------------------------------------------------------

    def sink_base_curves(self, sink_index: int, position: Point, load: float,
                         required_time: float) -> LeafCurves:
        """Per-candidate base curves for one sink (lines 1–4, Figure 9).

        For every candidate ``p``: the direct wire from ``p`` to the pin,
        optionally driven by each library buffer at ``p``; then the
        relocation closure so multi-hop buffered paths to a distant sink
        are available (cached once per net by the caller).
        """
        active_recorder().incr(metric.PTREE_BASE_CURVES)
        curves = self.new_curves()
        tech = self.tech
        pin = sink_leaf_solution(position, sink_index, load, required_time)
        for idx, p in enumerate(self.candidates):
            curve = curves[idx]
            length = p.manhattan_to(position)
            if fzero(length):
                curve.add(pin)
                self._buffer_all(curve, (pin,))
            else:
                base_cap = tech.wire_cap(length)
                base_res = tech.wire.resistance(length)
                for width in self.wire_widths:
                    cap = base_cap * width
                    res = base_res / width
                    direct = Solution(
                        p, load + cap,
                        required_time - res * (0.5 * cap + load),
                        0.0, Extend(pin, length, width))
                    curve.add(direct)
                    self._buffer_all(curve, (direct,))
            curve.prune()
        self._relocate(curves)
        return self.freeze_curves(curves)

    # ------------------------------------------------------------------
    # The DP proper
    # ------------------------------------------------------------------

    def run(self, leaf_curves: Sequence[LeafCurves]) -> List[SolutionCurve]:
        """Run *PTREE over ``leaf_curves``; return final curves per candidate.

        ``leaf_curves[i][c]`` is leaf ``i``'s base solution list at
        candidate index ``c``.  Base curves must already be
        relocation-closed (sink caches and Γ slices both are).

        This standalone entry point recomputes every sub-range;
        BUBBLE_CONSTRUCT instead drives :meth:`join_into` /
        :meth:`finish_range` through its cross-level range memo
        (Lemma 7 sharing).
        """
        count = len(leaf_curves)
        if count == 0:
            raise ValueError("*PTREE needs at least one leaf")
        if count == 1:
            return self.thaw_curves(self._curves_from_lists(leaf_curves[0]))

        with active_recorder().span(metric.SPAN_PTREE):
            # table[(i, j)] = per-candidate solution lists for leaves i..j.
            table: Dict[Tuple[int, int], List[List[Solution]]] = {}
            for i, base in enumerate(leaf_curves):
                table[(i, i)] = list(base)

            result: Optional[List[SolutionCurve]] = None
            for length in range(2, count + 1):
                for i in range(count - length + 1):
                    j = i + length - 1
                    curves = self.new_curves()
                    for u in range(i, j):
                        self.join_into(curves, table[(i, u)],
                                       table[(u + 1, j)])
                    self.finish_range(curves)
                    if length == count:
                        result = curves
                    else:
                        table[(i, j)] = self.freeze_curves(curves)
            assert result is not None
            return self.thaw_curves(result)

    def active_indices(self, points: Sequence[Point],
                       margin: float) -> List[int]:
        """Candidate indices inside the bounding box of ``points`` + margin.

        Restricting a sub-range's root candidates to the neighborhood of
        its own pins is the classic pruning that keeps the DP's k² terms
        affordable; roots outside the box are still reachable for enclosing
        ranges through their own (larger) boxes plus root relocation.  The
        returned list is never empty: when the margin excludes everything,
        the nearest candidate to the box center is used.
        """
        if not points:
            return list(range(self.k))
        xmin = min(p.x for p in points) - margin
        xmax = max(p.x for p in points) + margin
        ymin = min(p.y for p in points) - margin
        ymax = max(p.y for p in points) + margin
        active = [i for i, c in enumerate(self.candidates)
                  if xmin <= c.x <= xmax and ymin <= c.y <= ymax]
        if not active:
            center = Point(0.5 * (xmin + xmax), 0.5 * (ymin + ymax))
            active = [min(range(self.k),
                          key=lambda i: self.candidates[i].manhattan_to(center))]
        return active

    def join_into(self, curves: List[SolutionCurve], lefts: LeafCurves,
                  rights: LeafCurves,
                  active: Optional[List[int]] = None) -> None:
        """Accumulate the cross-product join of two sub-ranges.

        The ``S_b(p,i,j) = S(p,i,u) + S(p,u+1,j)`` step for one split
        point ``u``, delegated per candidate to the kernel's ``join``.
        """
        rec = active_recorder()
        if not rec.enabled:
            self._join_impl(curves, lefts, rights, active)
            return
        pairs = 0
        indices = range(len(curves)) if active is None else active
        for c in indices:
            if lefts[c] and rights[c]:
                pairs += len(lefts[c]) * len(rights[c])
        with rec.span(metric.SPAN_KERNEL_JOIN):
            self._join_impl(curves, lefts, rights, active)
        rec.incr(metric.PTREE_JOIN_CALLS)
        rec.incr(metric.PTREE_JOIN_PAIRS, pairs)

    def _join_impl(self, curves, lefts, rights, active) -> None:
        kernel_join = self.kernel.join
        indices = range(len(curves)) if active is None else active
        for c in indices:
            left_list = lefts[c]
            right_list = rights[c]
            if not left_list or not right_list:
                continue
            kernel_join(curves[c], left_list, right_list)

    def finish_range(self, curves: List[SolutionCurve],
                     active: Optional[List[int]] = None) -> None:
        """Post-join steps for one range: buffering, relocation, pruning."""
        indices = range(len(curves)) if active is None else active
        for c in indices:
            curve = curves[c]
            curve.prune()
            self._buffer_all(curve, list(curve), from_curve=True)
            curve.prune()
        self._relocate(curves, active)

    # ------------------------------------------------------------------
    # Kernel delegation
    # ------------------------------------------------------------------

    def _buffer_all(self, curve: SolutionCurve, solutions,
                    from_curve: bool = False) -> None:
        """Offer every library buffer at the root of each solution.

        ``from_curve`` marks ``solutions`` as the curve's own (just
        pruned) contents in dict order, unlocking backend caches.
        """
        rec = active_recorder()
        if not rec.enabled:
            self.kernel.add_buffer(curve, self.library, solutions,
                                   from_curve=from_curve)
            return
        rec.incr(metric.PTREE_BUFFER_OFFERS,
                 len(solutions) * len(self.buffer_params))
        with rec.span(metric.SPAN_KERNEL_BUFFER):
            skipped = self.kernel.add_buffer(curve, self.library, solutions,
                                             from_curve=from_curve)
        if skipped:
            rec.incr(metric.PTREE_BUFFER_SHADOW_SKIPS, skipped)

    def _relocate(self, curves: List[SolutionCurve],
                  active: Optional[List[int]] = None) -> None:
        """Relaxation passes of ``S(p) = min{d(p,p') + S(p')}`` over P.

        Targets are restricted to the active set; sources may be any
        candidate holding solutions (so results computed inside a child's
        tighter active box can migrate outward).
        """
        rec = active_recorder()
        targets = list(range(len(curves))) if active is None else active
        kernel = self.kernel
        library = self.library
        for _ in range(self.relocation_rounds):
            rec.incr(metric.PTREE_RELOCATE_PASSES)
            if rec.enabled:
                with rec.span(metric.SPAN_KERNEL_RELOCATE):
                    changed = kernel.relocate_round(curves, targets, self,
                                                    library)
            else:
                changed = kernel.relocate_round(curves, targets, self,
                                                library)
            for curve in curves:
                curve.prune()
            if not changed:
                break

    def _curves_from_lists(self, lists: LeafCurves) -> List[SolutionCurve]:
        curves = self.new_curves()
        for curve, solutions in zip(curves, lists):
            curve.extend(solutions)
            curve.prune()
        return curves


def _affine_params(buffer: Buffer, tech: Technology) -> BufferParams:
    """Probe the gate-delay model into affine (intercept, slope) form."""
    d0 = tech.buffer_delay(buffer, 0.0)
    d1 = tech.buffer_delay(buffer, 1.0)
    return (buffer, buffer.input_cap, buffer.area, d0, d1 - d0)
