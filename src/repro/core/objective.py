"""The two problem variants (section III.1).

Variant I: maximize the required time at the driver subject to a total
buffer area budget.  Variant II: minimize the total buffer area subject to
a required-time floor.  Both are answered from the same final
three-dimensional solution curve (the whole point of propagating the area
axis), so an :class:`Objective` is just a selection rule over solutions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.curves.solution import Solution


@dataclass(frozen=True)
class Objective:
    """A selection rule over final solutions.

    Exactly one of the two constructors should be used:

    * :meth:`max_required_time` — variant I; ``area_budget`` may be
      infinite for pure delay optimization.
    * :meth:`min_area` — variant II with a required-time floor.
    """

    kind: str
    area_budget: float = math.inf
    required_time_floor: float = -math.inf
    tradeoff_tolerance: float = 0.0

    @classmethod
    def max_required_time(cls, area_budget: float = math.inf) -> "Objective":
        """Variant I: max required time s.t. total buffer area <= budget."""
        if area_budget < 0:
            raise ValueError("area budget must be non-negative")
        return cls(kind="max_required_time", area_budget=area_budget)

    @classmethod
    def min_area(cls, required_time_floor: float) -> "Objective":
        """Variant II: min total buffer area s.t. required time >= floor."""
        return cls(kind="min_area", required_time_floor=required_time_floor)

    @classmethod
    def best_tradeoff(cls, tolerance: float = 25.0) -> "Objective":
        """The paper's extraction rule: "the solution with the best
        trade-off between required-time and total buffer area".

        Selects the minimum-area solution whose required time is within
        ``tolerance`` ps of the curve's best — i.e. spend area only where
        it buys meaningful required time.  Unlike the two pure variants
        this rule needs the whole curve (the best required time is only
        known after seeing every solution), so pairwise :meth:`better`
        comparisons are not defined for it; use :meth:`select`.
        """
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        return cls(kind="best_tradeoff", tradeoff_tolerance=tolerance)

    def feasible(self, solution: Solution) -> bool:
        """True when ``solution`` satisfies this objective's constraint."""
        if self.kind == "max_required_time":
            return solution.area <= self.area_budget
        if self.kind == "best_tradeoff":
            return True
        return solution.required_time >= self.required_time_floor

    def better(self, a: Solution, b: Solution) -> bool:
        """True when ``a`` is strictly preferable to ``b`` (both feasible)."""
        if self.kind == "max_required_time":
            return (a.required_time, -a.area, -a.load) > \
                   (b.required_time, -b.area, -b.load)
        if self.kind == "best_tradeoff":
            raise ValueError(
                "best_tradeoff is a whole-curve rule; use select()")
        return (-a.area, a.required_time, -a.load) > \
               (-b.area, b.required_time, -b.load)

    def select(self, solutions: Iterable[Solution]) -> Optional[Solution]:
        """Return the best feasible solution, or None when none qualifies.

        For variant I with no feasible solution under the budget, None is
        returned rather than silently relaxing the budget; callers decide
        the fallback (MERLIN's flows fall back to the unconstrained best
        and report the violation).
        """
        if self.kind == "best_tradeoff":
            pool = list(solutions)
            if not pool:
                return None
            best_req = max(s.required_time for s in pool)
            floor = best_req - self.tradeoff_tolerance
            qualified = [s for s in pool if s.required_time >= floor]
            return min(qualified,
                       key=lambda s: (s.area, -s.required_time, s.load))
        best: Optional[Solution] = None
        for solution in solutions:
            if not self.feasible(solution):
                continue
            if best is None or self.better(solution, best):
                best = solution
        return best

    def cost(self, solution: Solution) -> float:
        """Scalar cost (lower is better) for convergence tracking.

        MERLIN's Theorem 7 speaks of "the best cost strictly decreasing";
        this maps the selected solution to that scalar: negative required
        time for variant I, area for variant II.
        """
        if self.kind in ("max_required_time", "best_tradeoff"):
            return -solution.required_time
        return solution.area
