"""The paper's primary contribution.

* :mod:`repro.core.grouping` — Cα_Tree grouping structures χ0–χ3,
  ``STRETCH`` and ``SINK_SET`` (Figures 10 and 13), and the effective
  leaf-order construction with *bubble out* (Figure 5).
* :mod:`repro.core.star_ptree` — the buffered P-Tree (*PTREE) level router.
* :mod:`repro.core.bubble_construct` — the inner optimization engine
  (Figure 9).
* :mod:`repro.core.merlin` — the outer local-neighborhood-search loop
  (Figure 14).
* :mod:`repro.core.objective` — the two problem variants over final curves.
* :mod:`repro.core.config` — all tuning knobs in one dataclass.
"""

from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.core.bubble_construct import BubbleConstructResult, bubble_construct
from repro.core.merlin import MerlinResult, merlin

__all__ = [
    "MerlinConfig",
    "Objective",
    "BubbleConstructResult",
    "bubble_construct",
    "MerlinResult",
    "merlin",
]
