"""Cα_Tree grouping structures and local order-perturbation (bubbling).

This module implements the combinatorial skeleton of BUBBLE_CONSTRUCT:

* ``STRETCH`` (Figure 10) — how many extra order positions a grouping
  structure's span occupies beyond its sink count.
* :class:`Group` / :func:`make_group` — a sub-group of sinks identified by
  its rightmost span position ``r``, its sink count ``size`` and its
  grouping structure ``e`` ∈ {χ0, χ1, χ2, χ3}; the member positions follow
  ``SINK_SET`` (Figure 13): a χ1 group leaves a *bubble* (hole) just inside
  its right border, χ2 just inside its left border, χ3 both.
* :func:`level_plan` — given a parent group Ω and a nested child group ω,
  the effective leaf order of the parent's *PTREE level: the child collapses
  to one virtual leaf, and each of the child's bubbled-out sinks is placed
  on the far side of the corresponding border (*Bubble Out*, Figure 5),
  which is exactly how the final sink order deviates from the initial one
  while staying inside the neighborhood N(Π) (Lemmas 5 and 6).

All positions are 0-based order positions; sink identity is resolved
against an :class:`~repro.orders.order.Order` by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: The four abstract grouping structures of Figure 6.
CHI_CODES: Tuple[int, ...] = (0, 1, 2, 3)


def stretch(e: int) -> int:
    """Figure 10: extra span length of grouping structure ``e``."""
    if e == 0:
        return 0
    if e in (1, 2):
        return 1
    if e == 3:
        return 2
    raise ValueError(f"unknown grouping structure code: {e}")


@dataclass(frozen=True)
class Group:
    """A sub-group of sinks occupying order positions ``[span_left, r]``.

    ``size`` sinks live in a span of ``size + stretch(e)`` consecutive
    positions; the non-member positions are the *holes* (bubbles).
    """

    r: int
    size: int
    e: int

    @property
    def span_length(self) -> int:
        return self.size + stretch(self.e)

    @property
    def span_left(self) -> int:
        return self.r - self.span_length + 1

    @property
    def left_hole(self) -> Optional[int]:
        """Position of the left-border bubble (χ2/χ3), else None."""
        return self.span_left + 1 if self.e in (2, 3) else None

    @property
    def right_hole(self) -> Optional[int]:
        """Position of the right-border bubble (χ1/χ3), else None."""
        return self.r - 1 if self.e in (1, 3) else None

    @property
    def member_positions(self) -> Tuple[int, ...]:
        """SINK_SET (Figure 13): the span minus the holes, ascending."""
        holes = {self.left_hole, self.right_hole}
        return tuple(q for q in range(self.span_left, self.r + 1)
                     if q not in holes)

    def contains_position(self, q: int) -> bool:
        return q in self.member_positions


def make_group(r: int, size: int, e: int, n: int) -> Optional[Group]:
    """Build a group, or return None when the combination is invalid.

    Invalid combinations: span outside ``[0, n)``; χ3 with a single sink
    (its two holes would collide — the paper's L=1 "all structures are the
    same" degeneracy); holes that collide for any other reason.
    """
    if size < 1 or not 0 <= r < n:
        return None
    if e not in CHI_CODES:
        raise ValueError(f"unknown grouping structure code: {e}")
    if e == 3 and size < 2:
        return None
    group = Group(r=r, size=size, e=e)
    if group.span_left < 0:
        return None
    return group


@dataclass(frozen=True)
class LevelPlan:
    """The effective leaf order of one *PTREE level.

    ``leaves`` is the ordered leaf list: each entry is either
    ``("sink", position)`` for a sink routed directly at this level, or
    ``("group", None)`` for the nested child group's virtual leaf.  The
    bubbled-out sinks of the child appear as ordinary sink leaves placed on
    the far side of the child's border.
    """

    leaves: Tuple[Tuple[str, Optional[int]], ...]

    @property
    def sink_positions(self) -> Tuple[int, ...]:
        return tuple(q for kind, q in self.leaves if kind == "sink")

    @property
    def virtual_index(self) -> int:
        for index, (kind, _) in enumerate(self.leaves):
            if kind == "group":
                return index
        raise ValueError("level plan has no virtual leaf")


def level_plan(parent: Group, child: Group) -> Optional[LevelPlan]:
    """Return the parent level's leaf order, or None when incompatible.

    Compatibility requires the child's span to lie inside the parent's and
    every child member to be a parent member (line 15 of the pseudo-code:
    skip when ``g - G != ∅``).  A child hole that is *also* a parent hole
    simply bubbles out one more level and is not routed here.
    """
    if child.span_left < parent.span_left or child.r > parent.r:
        return None
    if child.size >= parent.size:
        return None
    parent_members = set(parent.member_positions)
    child_members = set(child.member_positions)
    if not child_members <= parent_members:
        return None

    before = [q for q in parent.member_positions if q < child.span_left]
    after = [q for q in parent.member_positions if q > child.r]
    leaves: List[Tuple[str, Optional[int]]] = [("sink", q) for q in before]
    left_hole = child.left_hole
    if left_hole is not None and left_hole in parent_members:
        leaves.append(("sink", left_hole))
    leaves.append(("group", None))
    right_hole = child.right_hole
    if right_hole is not None and right_hole in parent_members:
        leaves.append(("sink", right_hole))
    leaves.extend(("sink", q) for q in after)

    # Every parent member inside the child's span must be accounted for —
    # either a child member or one of the child's holes; anything else
    # means the structures overlap illegally (Figure 12).
    inside = {q for q in parent_members
              if child.span_left <= q <= child.r}
    accounted = child_members | {q for q in (left_hole, right_hole)
                                 if q is not None}
    if not inside <= accounted:
        return None
    return LevelPlan(leaves=tuple(leaves))


def enumerate_groups(n: int, size: int,
                     enable_bubbling: bool = True) -> List[Group]:
    """All valid groups of ``size`` sinks over ``n`` order positions."""
    codes = CHI_CODES if enable_bubbling else (0,)
    groups: List[Group] = []
    for e in codes:
        for r in range(n):
            group = make_group(r, size, e, n)
            if group is not None:
                groups.append(group)
    return groups


def child_sizes(parent_size: int, alpha: int) -> range:
    """Valid child sink counts for a parent of ``parent_size`` sinks.

    The level's fanout is (parent_size - child_size) new sinks plus the
    child's virtual leaf, which must not exceed α (third Cα_Tree property,
    line 10 of the pseudo-code: ``l ≥ L - α + 1``).
    """
    low = max(1, parent_size - alpha + 1)
    return range(low, parent_size)
