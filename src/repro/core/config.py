"""Configuration for the MERLIN engine and its baselines.

All pseudo-polynomial knobs live here so experiments can trade quality for
runtime in one place.  The defaults are the "fast" preset sized for pure
Python; :func:`MerlinConfig.paper_preset` approximates the paper's Table 1
setup (α = 15, full Hanan candidates, fine quantization) and is usable for
small nets when runtime is no object.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.curves import contract
from repro.curves.curve import CurveConfig
from repro.geometry.candidates import CandidateStrategy
from repro.instrument.recorder import Recorder
from repro.resilience.budget import ComputeBudget
from repro.resilience.errors import MerlinInputError


@dataclass(frozen=True)
class MerlinConfig:
    """Tuning knobs for BUBBLE_CONSTRUCT / MERLIN.

    Attributes
    ----------
    alpha:
        Maximum branching factor of the Cα_Tree (max fanout per buffer
        stage).  Each hierarchy level routes at most ``alpha`` leaves
        (new sinks plus the nested sub-group).
    candidate_strategy, max_candidates:
        How the buffer candidate set P is generated and its size cap
        (the ``k`` of the complexity bounds).
    curve:
        Quantization/capacity parameters for every solution curve.
    library_subset:
        When set, thin the technology's buffer library to this many cells
        (evenly across drive strengths) before optimizing — the ``m`` knob.
    relocation_rounds:
        Fixed-point passes for the *PTREE root-relocation recursion
        ``S(e,p,i,j) = min{d(p,p') + S(e,p',i,j)}``.  One round suffices
        for unbuffered moves (Manhattan distance is a metric); additional
        rounds only help when chains of intermediate buffers pay off.
    max_iterations:
        Cap on MERLIN's outer local-search loop (the paper bounds it by 3
        in the Table 2 flow; Theorem 7 guarantees termination regardless).
    enable_bubbling:
        When False, only the χ0 grouping structure is enumerated, reducing
        BUBBLE_CONSTRUCT to a fixed-order Cα_Tree/*P_Tree construction —
        the ablation baseline for measuring what bubbling buys.
    """

    alpha: int = 4
    candidate_strategy: CandidateStrategy = CandidateStrategy.REDUCED_HANAN
    max_candidates: Optional[int] = 8
    curve: CurveConfig = field(default_factory=lambda: CurveConfig(
        load_step=2.0, area_step=60.0, max_solutions=12))
    library_subset: Optional[int] = 6
    relocation_rounds: int = 1
    max_iterations: int = 10
    enable_bubbling: bool = True
    #: Sub-range root candidates are restricted to the bounding box of the
    #: range's own pins, expanded on every side by this fraction of the
    #: net's half-perimeter (None disables the restriction).  Enclosing
    #: ranges use their own larger boxes, and root relocation lets
    #: solutions migrate outward, so the restriction costs little quality
    #: while cutting the DP's k and k^2 terms sharply.
    active_margin_frac: Optional[float] = 0.30
    #: Default process fan-out for the outer-search drivers in
    #: :mod:`repro.parallel` (multi-seed starts, batch multi-net runs)
    #: and for :class:`repro.service.OptimizationService`'s warm pool.
    #: 1 runs everything inline in this process; the engine itself is
    #: always single-threaded per run, so results are identical for any
    #: value — this is a scheduling knob, not an optimization knob.
    workers: int = 1
    #: Curve-kernel backend ("python" or "numpy"); results are
    #: bit-identical either way (enforced by the bench equivalence gate).
    #: None follows ``curve.backend``; when set it takes precedence and is
    #: normalized into ``curve.backend`` at construction time, so library
    #: users get the vectorized kernels with ``MerlinConfig(backend=
    #: "numpy")`` instead of hand-replacing the nested CurveConfig.
    backend: Optional[str] = None
    #: Wire-sizing multipliers tried for every wire the DP creates
    #: (1.0 = minimum width; resistance scales 1/w, capacitance w).
    #: The default single width disables sizing; pass e.g. (1.0, 2.0, 4.0)
    #: for the simultaneous-wire-sizing extension of [LCLH96].
    wire_width_options: tuple = (1.0,)
    #: Observability sink (see :mod:`repro.instrument`).  When set,
    #: ``merlin()`` / the flow runners install it as the active recorder
    #: for the duration of the run and the whole engine reports into it;
    #: when None the no-op recorder keeps instrumentation free.
    #: Excluded from equality/repr: a recorder is a measurement channel,
    #: not part of the optimization problem.
    recorder: Optional[Recorder] = field(
        default=None, compare=False, repr=False)
    #: Cooperative compute budget (:mod:`repro.resilience.budget`).
    #: When set, ``merlin()``/``bubble_construct()`` charge it at their
    #: unit-of-work boundaries and raise ``BudgetExhaustedError`` on
    #: exhaustion — the degradation ladder catches that and falls back.
    #: Like ``recorder`` it is an execution-control channel, not part of
    #: the optimization problem: excluded from equality/repr and from
    #: the service's canonical cache key (degraded results are never
    #: cached, so a budget cannot poison full-quality lookups).
    budget: Optional[ComputeBudget] = field(
        default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        # MerlinInputError subclasses ValueError, so pre-taxonomy callers
        # catching ValueError keep working.
        if self.alpha < 2:
            raise MerlinInputError(
                "alpha must be >= 2 (a buffer must drive "
                "at least a sub-group and one sink)")
        if self.relocation_rounds < 0:
            raise MerlinInputError("relocation_rounds must be >= 0")
        if self.max_iterations < 1:
            raise MerlinInputError("max_iterations must be >= 1")
        if self.workers < 1:
            raise MerlinInputError("workers must be >= 1")
        if not self.wire_width_options or \
                any(w <= 0 for w in self.wire_width_options):
            raise MerlinInputError("wire_width_options must be positive "
                                   "and non-empty")
        if self.backend is not None:
            if self.backend not in contract.BACKENDS:
                raise MerlinInputError(
                    f"unknown backend {self.backend!r}; "
                    f"expected one of {contract.BACKENDS}")
            if self.curve.backend != self.backend:
                # Frozen dataclass: normalize via object.__setattr__ so
                # curve.backend and backend can never disagree.
                object.__setattr__(self, "curve", dataclasses.replace(
                    self.curve, backend=self.backend))

    @classmethod
    def fast_preset(cls) -> "MerlinConfig":
        """The default pure-Python-friendly preset (see class docstring)."""
        return cls()

    @classmethod
    def paper_preset(cls) -> "MerlinConfig":
        """Approximate the paper's Table 1 setup (expensive!).

        α = 15, full Hanan candidate set, 34-buffer library, fine
        quantization.  Only practical for nets with a handful of sinks in
        pure Python; provided for fidelity experiments.
        """
        return cls(
            alpha=15,
            candidate_strategy=CandidateStrategy.FULL_HANAN,
            max_candidates=None,
            curve=CurveConfig(load_step=0.5, area_step=15.0, max_solutions=64),
            library_subset=None,
            relocation_rounds=2,
            max_iterations=25,
        )

    @classmethod
    def test_preset(cls) -> "MerlinConfig":
        """Tiny preset for unit tests: smallest knobs that stay meaningful."""
        return cls(
            alpha=3,
            max_candidates=5,
            curve=CurveConfig(load_step=4.0, area_step=120.0, max_solutions=6),
            library_subset=3,
            relocation_rounds=1,
            max_iterations=4,
        )

    def with_(self, **changes) -> "MerlinConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
