"""Experiment harnesses reproducing the paper's evaluation.

* :mod:`repro.experiments.nets` — the Table 1 net suite (18 seeded nets
  named after the paper's source circuits).
* :mod:`repro.experiments.circuits` — the Table 2 circuit suite (15 seeded
  synthetic circuits with the paper's benchmark names).
* :mod:`repro.experiments.table1` / :mod:`repro.experiments.table2` — the
  harnesses that regenerate the two tables (per-net and post-layout
  area/delay/runtime with Flow II/III ratios over Flow I).
* :mod:`repro.experiments.ablations` — the prose-claim ablations (E3–E8 in
  DESIGN.md): candidate-set choice, initial-order sensitivity, α sweep,
  convergence traces, curve-size bounds.
* :mod:`repro.experiments.reporting` — plain-text table rendering shared
  by the CLI and the benchmarks.
"""

from repro.experiments.nets import table1_nets, make_experiment_net
from repro.experiments.circuits import table2_circuits
from repro.experiments.table1 import Table1Row, run_table1, format_table1
from repro.experiments.table2 import Table2Row, run_table2, format_table2

__all__ = [
    "table1_nets",
    "make_experiment_net",
    "table2_circuits",
    "Table1Row",
    "run_table1",
    "format_table1",
    "Table2Row",
    "run_table2",
    "format_table2",
]
