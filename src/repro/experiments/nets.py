"""The Table 1 net suite.

The paper extracts 18 nets from mapped ISCAS-85 circuits; sink loads and
required times come from technology mapping, and sink positions are drawn
randomly inside a bounding box sized so the interconnect delay roughly
equals a gate delay.  The mapped circuits are not available offline, so
this module generates 18 seeded nets with the same circuit/net naming, the
same bounding-box sizing rule, mapping-plausible load and required-time
spreads, and sink counts scaled down from the paper's 9–73 to 5–12
(DESIGN.md substitution #1 — the pure-Python DP is O(n⁴...); the
comparison shape, not the absolute scale, is the reproduction target).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import units
from repro.geometry.point import Point
from repro.net import Net, Sink

#: (source circuit, net name, paper sink count, scaled sink count)
TABLE1_NET_SPECS: Tuple[Tuple[str, str, int, int], ...] = (
    ("C432", "net1", 16, 8),
    ("C432", "net2", 16, 8),
    ("C432", "net3", 10, 6),
    ("C1355", "net4", 9, 5),
    ("C1355", "net5", 9, 5),
    ("C1355", "net6", 13, 7),
    ("C3540", "net7", 12, 6),
    ("C3540", "net8", 35, 10),
    ("C3540", "net9", 73, 12),
    ("C5315", "net10", 49, 10),
    ("C5315", "net11", 21, 8),
    ("C5315", "net12", 50, 10),
    ("C6288", "net13", 16, 8),
    ("C6288", "net14", 20, 8),
    ("C6288", "net15", 60, 11),
    ("C7552", "net16", 12, 6),
    ("C7552", "net17", 16, 8),
    ("C7552", "net18", 23, 9),
)


@dataclass(frozen=True)
class ExperimentNet:
    """One Table 1 workload item."""

    circuit: str
    net: Net
    paper_sinks: int

    @property
    def name(self) -> str:
        return self.net.name

    @property
    def sinks(self) -> int:
        return len(self.net)


def make_experiment_net(name: str, n_sinks: int, seed: int,
                        box_side: Optional[float] = None) -> Net:
    """Generate one seeded net with the paper's sizing rule.

    * Sink positions uniform in a box whose side defaults to
      ``GATE_EQUIVALENT_BOX_SIDE * sqrt(n/8)`` — larger nets get more area,
      keeping wire delay per net comparable to a gate delay.
    * Loads log-uniform over 4–45 fF (mapped-pin-like spread).
    * Required times normal around a net-specific mean with ~15% spread —
      mapped nets see sinks at different logic depths.
    * The driver sits on the box's lower-left corner region, like a cell
      driving a fanout cone placed ahead of it.
    """
    rng = random.Random(seed)
    if box_side is None:
        box_side = units.GATE_EQUIVALENT_BOX_SIDE * math.sqrt(n_sinks / 8.0)
    base_required = rng.uniform(750.0, 1150.0)
    sinks: List[Sink] = []
    for i in range(n_sinks):
        load = math.exp(rng.uniform(math.log(4.0), math.log(45.0)))
        required = rng.gauss(base_required, 0.15 * base_required)
        sinks.append(Sink(
            name=f"{name}_s{i}",
            position=Point(rng.uniform(0.0, box_side),
                           rng.uniform(0.0, box_side)),
            load=load,
            required_time=required,
        ))
    source = Point(rng.uniform(0.0, 0.15 * box_side),
                   rng.uniform(0.0, 0.15 * box_side))
    return Net(name=name, source=source, sinks=tuple(sinks))


def table1_nets(quick: bool = False, seed: int = 1999) -> List[ExperimentNet]:
    """The 18-net Table 1 suite (or a 6-net quick subset).

    ``seed`` offsets every net's generator seed, so alternative suites for
    robustness checks are one argument away.
    """
    specs = TABLE1_NET_SPECS[::3] if quick else TABLE1_NET_SPECS
    nets = []
    for index, (circuit, net_name, paper_n, scaled_n) in enumerate(specs):
        net = make_experiment_net(
            name=net_name,
            n_sinks=scaled_n,
            seed=seed + 7919 * index,
        )
        nets.append(ExperimentNet(circuit=circuit, net=net,
                                  paper_sinks=paper_n))
    return nets
