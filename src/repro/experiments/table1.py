"""Table 1: per-net buffer area, delay, and runtime for Flows I–III.

For every net of the suite the three experimental setups run with the
same technology and tuning configuration; Flow I reports absolute numbers
and Flows II/III report ratios over Flow I — exactly the layout of the
paper's Table 1 (plus MERLIN's convergence loop count).

Expected shape (paper averages): Flow II area 0.71 / delay 0.81 /
runtime 1.95; Flow III (MERLIN) area 0.88 / delay 0.46 / runtime 13.49.
The reproduction must show MERLIN clearly best on delay with runtime far
above the sequential flows; see EXPERIMENTS.md for measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines.flows import FLOW_I, FLOW_II, FLOW_III, run_flow
from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.experiments.nets import ExperimentNet, table1_nets
from repro.experiments.reporting import (
    arithmetic_mean,
    format_table,
    ratio,
)
from repro.tech.technology import Technology, default_technology


@dataclass
class Table1Row:
    """One net's results in Table 1 layout."""

    circuit: str
    net_name: str
    sinks: int
    flow1_area: float
    flow1_delay: float
    flow1_runtime: float
    flow2_area_ratio: float
    flow2_delay_ratio: float
    flow2_runtime_ratio: float
    flow3_area_ratio: float
    flow3_delay_ratio: float
    flow3_runtime_ratio: float
    loops: int


def run_table1(quick: bool = False,
               tech: Optional[Technology] = None,
               config: Optional[MerlinConfig] = None,
               objective: Optional[Objective] = None,
               seed: int = 1999,
               nets: Optional[List[ExperimentNet]] = None) -> List[Table1Row]:
    """Run the Table 1 experiment; returns one row per net."""
    tech = tech or default_technology()
    config = config or MerlinConfig().with_(max_iterations=3)
    # The paper extracts "the solution with the best trade-off between
    # required-time and total buffer area"; pure required-time maximization
    # would gorge on buffers and distort the area columns.
    objective = objective or Objective.best_tradeoff(tolerance=25.0)
    items = nets if nets is not None else table1_nets(quick=quick, seed=seed)
    rows: List[Table1Row] = []
    for item in items:
        flow1 = run_flow(FLOW_I, item.net, tech, config, objective)
        flow2 = run_flow(FLOW_II, item.net, tech, config, objective)
        flow3 = run_flow(FLOW_III, item.net, tech, config, objective)
        rows.append(Table1Row(
            circuit=item.circuit,
            net_name=item.name,
            sinks=item.sinks,
            flow1_area=flow1.buffer_area,
            flow1_delay=flow1.delay,
            flow1_runtime=flow1.runtime_s,
            flow2_area_ratio=ratio(flow2.buffer_area, flow1.buffer_area),
            flow2_delay_ratio=ratio(flow2.delay, flow1.delay),
            flow2_runtime_ratio=ratio(flow2.runtime_s, flow1.runtime_s),
            flow3_area_ratio=ratio(flow3.buffer_area, flow1.buffer_area),
            flow3_delay_ratio=ratio(flow3.delay, flow1.delay),
            flow3_runtime_ratio=ratio(flow3.runtime_s, flow1.runtime_s),
            loops=flow3.loops,
        ))
    return rows


def summarize_table1(rows: List[Table1Row]) -> dict:
    """Average ratio columns (arithmetic, matching the paper's last row)."""
    return {
        "flow2_area": arithmetic_mean([r.flow2_area_ratio for r in rows]),
        "flow2_delay": arithmetic_mean([r.flow2_delay_ratio for r in rows]),
        "flow2_runtime": arithmetic_mean([r.flow2_runtime_ratio for r in rows]),
        "flow3_area": arithmetic_mean([r.flow3_area_ratio for r in rows]),
        "flow3_delay": arithmetic_mean([r.flow3_delay_ratio for r in rows]),
        "flow3_runtime": arithmetic_mean([r.flow3_runtime_ratio for r in rows]),
        "loops": arithmetic_mean([float(r.loops) for r in rows]),
    }


def format_table1(rows: List[Table1Row]) -> str:
    """Render rows plus the averages line, Table 1 style."""
    headers = ["circuit", "net", "sinks",
               "I:area", "I:delay", "I:time",
               "II:area", "II:delay", "II:time",
               "III:area", "III:delay", "III:time", "loops"]
    body = [
        [r.circuit, r.net_name, r.sinks,
         f"{r.flow1_area:.0f}", f"{r.flow1_delay:.1f}", f"{r.flow1_runtime:.3f}",
         f"{r.flow2_area_ratio:.2f}", f"{r.flow2_delay_ratio:.2f}",
         f"{r.flow2_runtime_ratio:.2f}",
         f"{r.flow3_area_ratio:.2f}", f"{r.flow3_delay_ratio:.2f}",
         f"{r.flow3_runtime_ratio:.2f}", r.loops]
        for r in rows
    ]
    summary = summarize_table1(rows)
    body.append(
        ["Average:", "", "", "", "", "",
         f"{summary['flow2_area']:.2f}", f"{summary['flow2_delay']:.2f}",
         f"{summary['flow2_runtime']:.2f}",
         f"{summary['flow3_area']:.2f}", f"{summary['flow3_delay']:.2f}",
         f"{summary['flow3_runtime']:.2f}", f"{summary['loops']:.1f}"])
    return format_table(
        headers, body,
        title=("Table 1: per-net buffer area (um^2), delay (ps), runtime (s); "
               "Flows II/III as ratios over Flow I"))
