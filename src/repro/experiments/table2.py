"""Table 2: post-layout circuit area, delay, and runtime for Flows I–III.

Every circuit runs through the full substitute layout flow (placement,
pre-optimization STA, per-net buffered routing with the flow under test,
final STA); Flow I reports absolute numbers, Flows II/III report ratios
over Flow I — the paper's Table 2 layout.

Expected shape (paper averages): Flow II area 1.02 / delay 1.05 /
runtime 0.91; Flow III area 1.07 / delay 0.85 / runtime 1.85 — i.e. at the
circuit level MERLIN buys ~15% delay for ~7% area, and the sequential
flows roughly tie each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines.flows import FLOW_I, FLOW_II, FLOW_III
from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.experiments.circuits import table2_circuits
from repro.experiments.reporting import arithmetic_mean, format_table, ratio
from repro.netlist.flow_runner import run_circuit_flow
from repro.netlist.generator import generate_circuit
from repro.netlist.netlist import Netlist
from repro.tech.technology import Technology, default_technology


@dataclass
class Table2Row:
    """One circuit's results in Table 2 layout."""

    circuit: str
    flow1_area: float
    flow1_delay: float
    flow1_runtime: float
    flow2_area_ratio: float
    flow2_delay_ratio: float
    flow2_runtime_ratio: float
    flow3_area_ratio: float
    flow3_delay_ratio: float
    flow3_runtime_ratio: float
    nets_optimized: int


def run_table2(quick: bool = False,
               tech: Optional[Technology] = None,
               config: Optional[MerlinConfig] = None,
               objective: Optional[Objective] = None,
               seed: int = 1999,
               circuits: Optional[List[Netlist]] = None) -> List[Table2Row]:
    """Run the Table 2 experiment; one row per circuit.

    Per the paper's setup, MERLIN's iteration count is bounded by 3 for the
    full-circuit experiment (the default ``config`` enforces this).
    """
    tech = tech or default_technology()
    config = config or MerlinConfig().with_(max_iterations=3)
    # objective stays None by default: the flow runner then optimizes each
    # net to *meet its own STA timing with minimum buffer area*, which is
    # what keeps Table 2's area ratios commensurate (the paper's hover
    # around 1.0).  Pass an explicit objective to override per-net.
    items = circuits if circuits is not None \
        else table2_circuits(quick=quick, seed=seed)
    rows: List[Table2Row] = []
    for netlist in items:
        # Each flow re-derives placement deterministically, so sharing the
        # netlist object across flows is safe.
        flow1 = run_circuit_flow(netlist, FLOW_I, tech, config, objective)
        flow2 = run_circuit_flow(netlist, FLOW_II, tech, config, objective)
        flow3 = run_circuit_flow(netlist, FLOW_III, tech, config, objective)
        rows.append(Table2Row(
            circuit=netlist.name,
            flow1_area=flow1.total_area,
            flow1_delay=flow1.critical_delay,
            flow1_runtime=flow1.runtime_s,
            flow2_area_ratio=ratio(flow2.total_area, flow1.total_area),
            flow2_delay_ratio=ratio(flow2.critical_delay, flow1.critical_delay),
            flow2_runtime_ratio=ratio(flow2.runtime_s, flow1.runtime_s),
            flow3_area_ratio=ratio(flow3.total_area, flow1.total_area),
            flow3_delay_ratio=ratio(flow3.critical_delay, flow1.critical_delay),
            flow3_runtime_ratio=ratio(flow3.runtime_s, flow1.runtime_s),
            nets_optimized=flow3.nets_optimized,
        ))
    return rows


def summarize_table2(rows: List[Table2Row]) -> dict:
    return {
        "flow2_area": arithmetic_mean([r.flow2_area_ratio for r in rows]),
        "flow2_delay": arithmetic_mean([r.flow2_delay_ratio for r in rows]),
        "flow2_runtime": arithmetic_mean([r.flow2_runtime_ratio for r in rows]),
        "flow3_area": arithmetic_mean([r.flow3_area_ratio for r in rows]),
        "flow3_delay": arithmetic_mean([r.flow3_delay_ratio for r in rows]),
        "flow3_runtime": arithmetic_mean([r.flow3_runtime_ratio for r in rows]),
    }


def format_table2(rows: List[Table2Row]) -> str:
    headers = ["circuit",
               "I:area", "I:delay", "I:time",
               "II:area", "II:delay", "II:time",
               "III:area", "III:delay", "III:time", "nets"]
    body = [
        [r.circuit,
         f"{r.flow1_area:.0f}", f"{r.flow1_delay:.1f}",
         f"{r.flow1_runtime:.2f}",
         f"{r.flow2_area_ratio:.2f}", f"{r.flow2_delay_ratio:.2f}",
         f"{r.flow2_runtime_ratio:.2f}",
         f"{r.flow3_area_ratio:.2f}", f"{r.flow3_delay_ratio:.2f}",
         f"{r.flow3_runtime_ratio:.2f}", r.nets_optimized]
        for r in rows
    ]
    summary = summarize_table2(rows)
    body.append(
        ["Average:", "", "", "",
         f"{summary['flow2_area']:.2f}", f"{summary['flow2_delay']:.2f}",
         f"{summary['flow2_runtime']:.2f}",
         f"{summary['flow3_area']:.2f}", f"{summary['flow3_delay']:.2f}",
         f"{summary['flow3_runtime']:.2f}", ""])
    return format_table(
        headers, body,
        title=("Table 2: post-layout circuit area (um^2), critical delay "
               "(ps), runtime (s); Flows II/III as ratios over Flow I"))
