"""Ablations for the design claims made in the paper's prose (E3–E8).

Each function returns plain dataclass rows so the CLI and benchmarks can
render or assert on them.

* :func:`candidate_ablation` — §III.1: the candidate-location strategy
  barely matters as long as k grows with n.
* :func:`initial_order_ablation` — §IV: MERLIN's result is nearly
  independent of the initial sink order.
* :func:`alpha_ablation` — §3.2.1: the effect of the branching bound α.
* :func:`bubbling_ablation` — what the χ1–χ3 grouping structures buy over
  a fixed-order construction (the paper's core claim).
* :func:`convergence_trace` — Theorem 7: the best cost strictly decreases
  across MERLIN iterations.
* :func:`curve_size_profile` — Lemma 10: curve sizes stay bounded as the
  quantization gets finer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.bubble_construct import bubble_construct, make_context
from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.curves.curve import CurveConfig
from repro.geometry.candidates import CandidateStrategy
from repro.net import Net
from repro.orders.heuristics import projection_order, random_order
from repro.orders.order import Order
from repro.orders.tsp import tsp_order
from repro.routing.evaluate import evaluate_tree
from repro.tech.technology import Technology, default_technology


@dataclass
class AblationRow:
    """One configuration's outcome in an ablation sweep."""

    label: str
    delay: float
    buffer_area: float
    runtime_s: float
    detail: str = ""


def candidate_ablation(net: Net, tech: Optional[Technology] = None,
                       config: Optional[MerlinConfig] = None
                       ) -> List[AblationRow]:
    """E3: run MERLIN with each candidate-generation strategy."""
    import time

    tech = tech or default_technology()
    config = config or MerlinConfig().with_(max_iterations=2)
    rows: List[AblationRow] = []
    for strategy in CandidateStrategy:
        cfg = config.with_(candidate_strategy=strategy)
        start = time.perf_counter()
        result = merlin(net, tech, config=cfg)
        runtime = time.perf_counter() - start
        ev = evaluate_tree(result.tree, tech)
        context = make_context(net, tech, cfg)
        rows.append(AblationRow(
            label=strategy.value, delay=ev.delay, buffer_area=ev.buffer_area,
            runtime_s=runtime, detail=f"k={context.k}"))
    return rows


def initial_order_ablation(net: Net, tech: Optional[Technology] = None,
                           config: Optional[MerlinConfig] = None
                           ) -> List[AblationRow]:
    """E4: run MERLIN from different initial sink orders."""
    import time

    tech = tech or default_technology()
    config = config or MerlinConfig()
    seeds = {
        "tsp": tsp_order(net),
        "tsp_reversed": tsp_order(net).reversed(),
        "x_projection": projection_order(net, "x"),
        "random_a": random_order(net, seed=11),
        "random_b": random_order(net, seed=97),
    }
    rows: List[AblationRow] = []
    for label, order in seeds.items():
        start = time.perf_counter()
        result = merlin(net, tech, config=config, initial_order=order)
        runtime = time.perf_counter() - start
        ev = evaluate_tree(result.tree, tech)
        rows.append(AblationRow(
            label=label, delay=ev.delay, buffer_area=ev.buffer_area,
            runtime_s=runtime, detail=f"loops={result.iterations}"))
    return rows


def alpha_ablation(net: Net, tech: Optional[Technology] = None,
                   config: Optional[MerlinConfig] = None,
                   alphas: Optional[List[int]] = None) -> List[AblationRow]:
    """E5: sweep the Cα_Tree branching bound."""
    import time

    tech = tech or default_technology()
    config = config or MerlinConfig().with_(max_iterations=1)
    alphas = alphas or [2, 3, 4, 6]
    order = tsp_order(net)
    rows: List[AblationRow] = []
    for alpha in alphas:
        cfg = config.with_(alpha=alpha)
        start = time.perf_counter()
        result = bubble_construct(net, order, tech, config=cfg)
        runtime = time.perf_counter() - start
        ev = evaluate_tree(result.tree, tech)
        rows.append(AblationRow(
            label=f"alpha={alpha}", delay=ev.delay,
            buffer_area=ev.buffer_area, runtime_s=runtime,
            detail=f"ranges={result.stats['ranges']}"))
    return rows


def bubbling_ablation(net: Net, tech: Optional[Technology] = None,
                      config: Optional[MerlinConfig] = None
                      ) -> List[AblationRow]:
    """Core claim: neighborhood search vs fixed-order construction.

    Runs BUBBLE_CONSTRUCT once with bubbling on and once with only the χ0
    structure; with the χ-structures the result can only be equal or
    better (the fixed-order space is a subset) — at extra runtime.
    """
    import time

    tech = tech or default_technology()
    config = config or MerlinConfig().with_(max_iterations=1)
    order = tsp_order(net)
    rows: List[AblationRow] = []
    for label, enabled in (("bubbling_on", True), ("bubbling_off", False)):
        cfg = config.with_(enable_bubbling=enabled)
        start = time.perf_counter()
        result = bubble_construct(net, order, tech, config=cfg)
        runtime = time.perf_counter() - start
        ev = evaluate_tree(result.tree, tech)
        rows.append(AblationRow(
            label=label, delay=ev.delay, buffer_area=ev.buffer_area,
            runtime_s=runtime,
            detail=f"order_out={list(result.order_out)}"))
    return rows


def convergence_trace(net: Net, tech: Optional[Technology] = None,
                      config: Optional[MerlinConfig] = None
                      ) -> List[AblationRow]:
    """E7: per-iteration cost trace of one MERLIN run."""
    tech = tech or default_technology()
    config = config or MerlinConfig().with_(max_iterations=6)
    result = merlin(net, tech, config=config)
    rows = []
    for index, cost in enumerate(result.cost_trace, start=1):
        rows.append(AblationRow(
            label=f"iteration_{index}", delay=cost, buffer_area=0.0,
            runtime_s=0.0,
            detail=f"order={list(result.order_trace[index - 1])}"))
    return rows


def curve_size_profile(net: Net, tech: Optional[Technology] = None,
                       load_steps: Optional[List[float]] = None
                       ) -> List[AblationRow]:
    """E8: final-curve sizes as quantization (the paper's q) gets finer."""
    import time

    tech = tech or default_technology()
    load_steps = load_steps or [8.0, 4.0, 2.0, 1.0]
    order = tsp_order(net)
    rows: List[AblationRow] = []
    for step in load_steps:
        cfg = MerlinConfig().with_(curve=CurveConfig(
            load_step=step, area_step=60.0, max_solutions=48))
        start = time.perf_counter()
        result = bubble_construct(net, order, tech, config=cfg)
        runtime = time.perf_counter() - start
        rows.append(AblationRow(
            label=f"load_step={step}",
            delay=evaluate_tree(result.tree, tech).delay,
            buffer_area=float(len(result.final_solutions)),
            runtime_s=runtime,
            detail=f"final_curve_size={len(result.final_solutions)}"))
    return rows


def format_ablation(rows: List[AblationRow], title: str) -> str:
    from repro.experiments.reporting import format_table

    return format_table(
        ["config", "delay(ps)", "buf_area", "runtime(s)", "detail"],
        [[r.label, f"{r.delay:.1f}", f"{r.buffer_area:.0f}",
          f"{r.runtime_s:.2f}", r.detail] for r in rows],
        title=title)
