"""The Table 2 circuit suite.

Fifteen seeded synthetic circuits carrying the paper's benchmark names
(ISCAS-85 plus MCNC).  Shapes are scaled to pure-Python-friendly sizes
(tens of gates rather than thousands — substitution #2 in DESIGN.md); the
relative sizes between circuits loosely follow the paper's area column so
bigger paper circuits are bigger here too.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.netlist.generator import CircuitSpec
from repro.netlist.netlist import Netlist
from repro.netlist.generator import generate_circuit

#: (name, logic gates, levels, PIs, POs) — sizes loosely ranked like the
#: paper's Table 2 area column.
TABLE2_CIRCUIT_SHAPES: Tuple[Tuple[str, int, int, int, int], ...] = (
    ("C1355", 30, 5, 8, 6),
    ("C1908", 36, 6, 8, 6),
    ("C2670", 40, 6, 10, 8),
    ("C3540", 48, 7, 10, 8),
    ("C432", 26, 5, 7, 5),
    ("C6288", 60, 8, 10, 8),
    ("C7552", 64, 8, 12, 10),
    ("alu4", 36, 6, 8, 6),
    ("b9", 20, 4, 6, 5),
    ("dalu", 42, 6, 10, 8),
    ("des", 64, 7, 12, 10),
    ("duke2", 30, 5, 8, 6),
    ("k2", 52, 7, 10, 8),
    ("rot", 38, 6, 9, 7),
    ("t481", 40, 6, 9, 7),
)


def table2_specs(quick: bool = False, seed: int = 1999,
                 max_fanout: int = 7) -> List[CircuitSpec]:
    """Circuit specs for the Table 2 run (or a 4-circuit quick subset)."""
    shapes = TABLE2_CIRCUIT_SHAPES[::4] if quick else TABLE2_CIRCUIT_SHAPES
    specs = []
    for index, (name, gates, levels, pis, pos) in enumerate(shapes):
        specs.append(CircuitSpec(
            name=name,
            primary_inputs=pis,
            primary_outputs=pos,
            logic_gates=gates,
            levels=levels,
            max_fanout=max_fanout,
            seed=seed + 104729 * index,
        ))
    return specs


def table2_circuits(quick: bool = False, seed: int = 1999) -> List[Netlist]:
    """Generate the Table 2 circuits (deterministic in ``seed``)."""
    return [generate_circuit(spec) for spec in table2_specs(quick, seed)]


def resolve_circuit_spec(spec: str, seed: int) -> CircuitSpec:
    """A user-facing circuit selector -> :class:`CircuitSpec`.

    Accepts a Table 2 circuit name (``b9``, ``C432``, ...) or a custom
    colon-separated shape ``gates:levels:pis:pos[:max_fanout]``; raises
    ``ValueError`` with a one-line message otherwise.  Shared by
    ``merlin-repro closure --circuit`` and the HTTP ``POST /closure``
    handler.
    """
    for name, gates, levels, pis, pos in TABLE2_CIRCUIT_SHAPES:
        if name == spec:
            return CircuitSpec(name=name, primary_inputs=pis,
                               primary_outputs=pos, logic_gates=gates,
                               levels=levels, max_fanout=7, seed=seed)
    parts = spec.split(":")
    if len(parts) not in (4, 5):
        known = ", ".join(s[0] for s in TABLE2_CIRCUIT_SHAPES)
        raise ValueError(
            f"unknown circuit {spec!r}: expected one of {known} or a "
            f"custom 'gates:levels:pis:pos[:max_fanout]' shape")
    try:
        numbers = [int(p) for p in parts]
    except ValueError:
        raise ValueError(f"malformed circuit shape {spec!r}: every "
                         f"colon-separated field must be an integer") from None
    gates, levels, pis, pos = numbers[:4]
    max_fanout = numbers[4] if len(numbers) == 5 else 7
    return CircuitSpec(name=f"custom_{spec.replace(':', 'x')}",
                       primary_inputs=pis, primary_outputs=pos,
                       logic_gates=gates, levels=levels,
                       max_fanout=max_fanout, seed=seed)
