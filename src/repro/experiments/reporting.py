"""Plain-text table rendering shared by the CLI and benchmarks.

The experiment harnesses return dataclass rows; this module turns them
into fixed-width tables shaped like the paper's Tables 1 and 2 (absolute
numbers for Flow I, ratios over Flow I for Flows II and III, and a closing
averages row).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    materialized: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def ratio(value: float, reference: float) -> float:
    """``value / reference`` with a guard against degenerate references."""
    if reference == 0:
        return float("inf") if value > 0 else 1.0
    return value / reference


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for ratio columns)."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    product = 1.0
    for v in positives:
        product *= v
    return product ** (1.0 / len(positives))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Mean over the *finite* values.

    Ratio columns can contain ``inf`` when the reference flow used no
    buffers at all (e.g. LTTREE legitimately inserting nothing on an easy
    net); those rows carry no ratio information and are excluded, exactly
    as a paper's "Average" row would silently do.
    """
    vals = [v for v in values if math.isfinite(v)]
    return sum(vals) / len(vals) if vals else 0.0


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False
