"""Vectorized (NumPy) curve kernels — the ``"numpy"`` backend internals.

The engines spend nearly all of their time in four loops over solution
attributes: the cross-product *join*, the *buffer* offer, the root
*relocation* relaxation, and the 3-D Pareto *prune*.  Each loop touches
only the ``(load, required_time, area)`` triples; the traceback detail of
a solution matters only if the solution survives to the very end of the
DP.  That split is what this module exploits:

* live curves under accumulation are :class:`PendingCurve` instances
  whose bucket map holds lightweight ``(load, req, area, ctx, i)``
  entries: the attribute triple plus a *traceback context* — ``ctx``
  describes the batch that produced the entry and ``i`` is its flat
  position inside that batch.  No :class:`Solution` (or its detail
  record) is constructed while candidates are generated and culled;
* frozen curves are :class:`CurveSoA` blocks: the surviving entries in
  curve order, with the three attribute vectors built lazily.  Freezing
  does **not** materialize solutions — a frozen block's entries keep
  their contexts, and parents reference the block itself, so the whole
  Γ table is built end-to-end over entry blocks.  Solutions exist only
  after :func:`resolve_entry` walks an entry's context chain at
  *traceback* time (the final curve, or an explicit thaw);
* candidate triples are produced by whole-array arithmetic, and bucket
  acceptance for a whole batch is resolved at once by a grouped arg-max
  (:func:`_winner_stream`).

Small batches (a few dozen elements) stay on scalar loops — array
setup would cost more than it saves — but also store deferred entries,
so both paths feed the same representation.

This module is representation-internal: engine layers reach it only
through the backend objects registered in
:mod:`repro.curves.contract` (enforced by the ``LAY-KERNEL``
staticcheck rule).

Bit-identical results
---------------------
The numpy backend is a drop-in replacement verified by the golden
fingerprints, which requires exact — not approximate — equivalence:

* All attribute arithmetic uses float64 with the same operation order and
  associativity as the scalar code, so every produced triple is
  bit-identical (NumPy does not contract ``a - b*c`` into an FMA).
* Bucket keys use :func:`numpy.rint`, which rounds half-to-even exactly
  like Python's :func:`round`.
* Sequentially inserting a candidate stream into a bucket map — where a
  candidate replaces the incumbent iff it has strictly higher required
  time — ends, per bucket, with the *first* candidate attaining the
  maximum required time, and new buckets appear in first-occurrence
  order.  :func:`_winner_stream` computes exactly that fixed point, so
  the final bucket map (contents *and* dict insertion order) matches the
  scalar loop.
* The scalar Pareto staircase keeps an entry iff no earlier entry in
  ``(load, area, -required_time)`` order dominates it; dominance is
  transitive, so "dominated by a kept earlier entry" equals "dominated by
  *any* earlier entry", which the vectorized prune evaluates as one
  boolean matrix.
* Li & Shi-style shadow skips (see :mod:`repro.curves.contract`) only
  drop a buffer offer when an earlier offer of the same batch provably
  landed the same bucket key with a required time at least as high — a
  candidate the bucket map would have rejected anyway.

Availability
------------
NumPy is an optional extra (``pip install repro[fast]``).  When it is
missing, requesting the ``"numpy"`` backend degrades to ``"python"`` with
a single logged event — never an ImportError.
"""

from __future__ import annotations

import logging
from bisect import bisect_right
from itertools import repeat
from typing import Callable, List, Optional, Sequence, Tuple

from repro.curves.solution import Buffered, Extend, Join, Solution
from repro.instrument import names as metric
from repro.instrument.recorder import active_recorder

try:  # pragma: no cover - exercised via tests that stub _np to None
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

logger = logging.getLogger(__name__)

#: Backend names accepted by :class:`repro.curves.curve.CurveConfig`.
BACKENDS = ("python", "numpy")

#: Minimum batch sizes (stream elements) below which the scalar loops
#: win; measured on CPython 3.11 + NumPy 2.x.  Results are identical
#: either way — these trade nothing but speed.
JOIN_MIN_PAIRS = 128
BUFFER_MIN_OFFERS = 128
RELOCATE_MIN_STREAM = 192
EXTEND_MIN_ITEMS = 64
PRUNE_MIN_ITEMS = 40
#: Pending-entry prune crossover sits higher: its scalar sweep is a
#: decorated C tuple sort over plain floats (no attribute access), so
#: the lexsort-based vector path only wins on larger fronts.
PENDING_PRUNE_MIN_ITEMS = 96

_fallback_logged = False


def numpy_available() -> bool:
    """True when the NumPy runtime was importable."""
    return _np is not None


def resolve_backend(requested: str) -> str:
    """Map a requested backend name to the one that will actually run.

    ``"numpy"`` without NumPy installed degrades gracefully to
    ``"python"``, emitting a single log record per process (and never an
    ImportError) so batch runs are not flooded.
    """
    global _fallback_logged
    if requested not in BACKENDS:
        raise ValueError(
            f"unknown curve backend {requested!r}; expected one of {BACKENDS}")
    if requested == "numpy" and _np is None:
        if not _fallback_logged:
            _fallback_logged = True
            logger.warning(
                "curve backend 'numpy' requested but NumPy is not "
                "installed; falling back to the pure-Python backend "
                "(pip install repro[fast] to enable it)")
        return "python"
    return requested


def _entry_order(t) -> Tuple[float, float, float]:
    """Freeze order of pending entries — matches ``Solution.key``."""
    return (t[0], -t[1], t[2])


class CurveSoA:
    """A frozen curve as structure-of-arrays over pending entries.

    ``entries`` is the canonical column: the surviving pending tuples in
    curve order (ascending ``(load, -required_time, area)``).  The three
    attribute vectors are built lazily on first access; the *solution*
    column is built even later — ``sols``/iteration/indexing materialize
    the traceback on demand via :func:`resolve_entry`, so a block whose
    entries never reach the final curve never constructs a
    :class:`Solution` at all.  A ``CurveSoA`` can stand in anywhere the
    engine consumes a frozen ``List[Solution]``.
    """

    __slots__ = ("entries", "_sols", "_resolved", "_loads", "_reqs",
                 "_areas")

    def __init__(self, sols: Optional[Sequence[Solution]] = None,
                 entries: Optional[list] = None):
        if entries is None:
            sol_list = list(sols) if sols is not None else []
            self.entries = [(s.load, s.required_time, s.area, None, s)
                            for s in sol_list]
            self._sols: Optional[List[Solution]] = sol_list
        else:
            self.entries = entries
            self._sols = None
        #: Per-row materialization cache (deferred blocks only).
        self._resolved: dict = {}
        self._loads = None
        self._reqs = None
        self._areas = None

    def _build(self) -> None:
        flat = [x for t in self.entries for x in (t[0], t[1], t[2])]
        matrix = _np.array(flat, dtype=_np.float64).reshape(
            len(self.entries), 3)
        self._loads = _np.ascontiguousarray(matrix[:, 0])
        self._reqs = _np.ascontiguousarray(matrix[:, 1])
        self._areas = _np.ascontiguousarray(matrix[:, 2])

    @property
    def loads(self):
        if self._loads is None:
            self._build()
        return self._loads

    @property
    def reqs(self):
        if self._reqs is None:
            self._build()
        return self._reqs

    @property
    def areas(self):
        if self._areas is None:
            self._build()
        return self._areas

    def resolve_row(self, i: int) -> Solution:
        """Materialize (and cache) the solution at row ``i``."""
        sols = self._sols
        if sols is not None:
            return sols[i]
        cache = self._resolved
        sol = cache.get(i)
        if sol is None:
            sol = resolve_entry(self.entries[i], {})
            cache[i] = sol
        return sol

    @property
    def sols(self) -> List[Solution]:
        """The fully materialized solution column (the traceback)."""
        sols = self._sols
        if sols is None:
            memo: dict = {}
            cache = self._resolved
            sols = []
            for i, t in enumerate(self.entries):
                sol = cache.get(i)
                if sol is None:
                    sol = resolve_entry(t, memo)
                    cache[i] = sol
                sols.append(sol)
            self._sols = sols
        return sols

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.sols)

    def __getitem__(self, index):
        return self.sols[index]

    def __bool__(self) -> bool:
        return bool(self.entries)


def as_soa(solutions) -> CurveSoA:
    """Return ``solutions`` as a :class:`CurveSoA`, converting if needed."""
    if isinstance(solutions, CurveSoA):
        return solutions
    return CurveSoA(solutions)


class BufferVectors:
    """Per-library-buffer affine delay parameters as column vectors.

    Built once per net (the buffer library is fixed), consumed by the
    batched buffer-offer and relocation kernels so a whole
    ``(solutions, buffers)`` matrix is produced with a handful of
    broadcast operations instead of a per-buffer column loop.
    ``params`` keeps the original ``(buffer, input_cap, area, d0, slope)``
    tuples for scalar fallbacks and traceback resolution.

    :class:`repro.curves.contract.KernelLibrary` subclasses extend this
    with the quantized cap keys and the Li & Shi shadow table; the
    kernels below accept either (the extras are looked up with
    ``getattr``).
    """

    __slots__ = ("params", "caps", "areas", "d0", "slope")

    def __init__(self, buffer_params):
        self.params = list(buffer_params)
        if _np is not None:
            self.caps = _np.array([p[1] for p in self.params])
            self.areas = _np.array([p[2] for p in self.params])
            self.d0 = _np.array([p[3] for p in self.params])
            self.slope = _np.array([p[4] for p in self.params])

    def __len__(self) -> int:
        return len(self.params)


class TupleSoA:
    """Lazy attribute vectors over a list of pending-entry tuples.

    The relocation pass snapshots every live curve once per round and
    reads each snapshot from multiple targets; this wrapper builds the
    three attribute vectors at most once per snapshot.
    """

    __slots__ = ("entries", "_loads", "_reqs", "_areas")

    def __init__(self, entries: list):
        self.entries = entries
        self._loads = None
        self._reqs = None
        self._areas = None

    def _build(self) -> None:
        flat = [x for t in self.entries for x in (t[0], t[1], t[2])]
        matrix = _np.array(flat, dtype=_np.float64).reshape(
            len(self.entries), 3)
        self._loads = _np.ascontiguousarray(matrix[:, 0])
        self._reqs = _np.ascontiguousarray(matrix[:, 1])
        self._areas = _np.ascontiguousarray(matrix[:, 2])

    @property
    def loads(self):
        if self._loads is None:
            self._build()
        return self._loads

    @property
    def reqs(self):
        if self._reqs is None:
            self._build()
        return self._reqs

    @property
    def areas(self):
        if self._areas is None:
            self._build()
        return self._areas

    def __len__(self) -> int:
        return len(self.entries)


# ----------------------------------------------------------------------
# Batched bucket-winner selection
# ----------------------------------------------------------------------

def _winner_stream(inv_load: float, inv_area: float, loads, reqs, areas):
    """Reduce a candidate stream to its per-bucket winners.

    Returns six parallel lists — flat stream index, the two bucket key
    halves, and the attribute triple — one row per bucket, in
    first-occurrence order of the bucket within the stream.  Merging the
    rows into a bucket map (replace iff strictly higher required time)
    yields exactly the state sequential scalar insertion would have
    reached, including dict insertion order.
    """
    # Quantized bucket keys; rint == round-half-to-even == Python round().
    klo = _np.rint(loads * inv_load).astype(_np.int64)
    kar = _np.rint(areas * inv_area).astype(_np.int64)
    packed = klo * (1 << 32) + kar
    n = len(packed)
    # One stable sort by (bucket, -req, position): the head of each
    # bucket block is its winner — the first stream entry attaining the
    # bucket's maximum required time.
    positions = _np.arange(n)
    perm = _np.lexsort((positions, -reqs, packed))
    sorted_keys = packed[perm]
    head = _np.empty(n, dtype=bool)
    head[0] = True
    head[1:] = sorted_keys[1:] != sorted_keys[:-1]
    starts = _np.flatnonzero(head)
    winners = perm[starts]
    # Replay winners in first-occurrence order so newly created buckets
    # enter the dict exactly where the scalar loop would have put them.
    firsts = _np.minimum.reduceat(perm, starts)
    winners = winners[_np.argsort(firsts, kind="stable")]
    return (winners.tolist(), klo[winners].tolist(), kar[winners].tolist(),
            loads[winners].tolist(), reqs[winners].tolist(),
            areas[winners].tolist())


def _merge_entries(curve, keys, entries) -> int:
    """Merge a winner stream (parallel key/entry iterators, C-level zip
    tuples) into a pending curve's bucket map; return how many stored."""
    by_bucket = curve._by_bucket
    if not by_bucket:
        # First batch into a fresh curve: winners already carry unique
        # keys in first-occurrence order — build the dict directly.
        by_bucket.update(zip(keys, entries))
        stored = len(by_bucket)
    else:
        stored = 0
        get = by_bucket.get
        for key, entry in zip(keys, entries):
            incumbent = get(key)
            if incumbent is None or incumbent[1] < entry[1]:
                by_bucket[key] = entry
                stored += 1
    if stored:
        curve._pruned = False
    return stored


def batch_insert(curve, loads, reqs, areas,
                 make_solution: Callable[[int], Solution]) -> int:
    """Insert a candidate stream into a :class:`SolutionCurve` at once.

    ``make_solution(i)`` materializes the solution for stream position
    ``i`` and is called only for per-bucket winners that beat the curve's
    incumbent (or open a new bucket).  Returns the number of solutions
    stored — non-zero exactly when the scalar loop would have had at
    least one successful ``accept_key``.
    """
    if len(loads) == 0:
        return 0
    stream = _winner_stream(curve._inv_load, curve._inv_area,
                            loads, reqs, areas)
    by_bucket = curve._by_bucket
    stored = 0
    for w, key_l, key_a, _load, req, _area in zip(*stream):
        key = (key_l, key_a)
        incumbent = by_bucket.get(key)
        if incumbent is None or incumbent.required_time < req:
            by_bucket[key] = make_solution(w)
            stored += 1
    if stored:
        curve._pruned = False
    return stored


# ----------------------------------------------------------------------
# Pending entries: deferred materialization
# ----------------------------------------------------------------------
#
# A pending entry is the 5-tuple ``(load, req, area, ctx, i)``.  ``ctx``
# is None when ``i`` already is the materialized Solution; otherwise it
# is one of:
#
#   ("join", root, left_block, right_block, nb)
#       flat i -> Join(left_block[i // nb], right_block[i % nb])
#   ("buf", root, sources, buffer_params)
#       flat i -> Buffered(resolve(sources[i // m]), buffer i % m)
#   ("ext1", root, src, length, width)
#       the moved solution of one scalar relocation offer
#   ("buf1", root, src, buffer)
#       a buffer driving one already-described source (scalar relocation)
#   ("reloc", root, starts, blocks, opts, flat_loads, flat_reqs,
#    buffer_params)
#       flat i -> the unbuffered moved solution, or a buffer driving it
#       (the moved triple is recovered from row i's column 0)
#
# Sources inside a context may be Solutions, other pending entries, or
# rows of other frozen blocks — freezing no longer materializes, so
# chains span the whole DP.  Resolution therefore runs on an explicit
# stack (no recursion limit) with an ``id()``-keyed memo plus per-block
# row caches, so shared sub-structures materialize once.

def _src_solution(src, memo):
    """Resolved solution for a context source, or None if not yet done."""
    if isinstance(src, Solution):
        return src
    if src[3] is None:
        return src[4]
    return memo.get(id(src))


def _block_row(block: CurveSoA, i: int, memo):
    """Resolved solution for a block row, or None if not yet done."""
    sols = block._sols
    if sols is not None:
        return sols[i]
    cache = block._resolved
    sol = cache.get(i)
    if sol is not None:
        return sol
    t = block.entries[i]
    if t[3] is None:
        sol = t[4]
    else:
        sol = memo.get(id(t))
        if sol is None:
            return None
    cache[i] = sol
    return sol


def resolve_entry(entry, memo: dict) -> Solution:
    """Materialize a pending entry into a :class:`Solution`.

    Iterative (explicit work stack): context chains now span the whole
    DP — a parent block's join references child blocks, whose entries
    reference grandchild blocks, and so on — so recursion depth would
    scale with the hierarchy height times the per-range chain length.
    """
    ctx = entry[3]
    if ctx is None:
        return entry[4]
    sol = memo.get(id(entry))
    if sol is not None:
        return sol
    stack = [entry]
    push = stack.append
    while stack:
        cur = stack[-1]
        ctx = cur[3]
        if ctx is None:
            stack.pop()
            continue
        key = id(cur)
        if key in memo:
            stack.pop()
            continue
        kind = ctx[0]
        i = cur[4]
        if kind == "join":
            _, root, lblk, rblk, nb = ctx
            ai, bi = divmod(i, nb)
            left = _block_row(lblk, ai, memo)
            right = _block_row(rblk, bi, memo)
            if left is None or right is None:
                if left is None:
                    push(lblk.entries[ai])
                if right is None:
                    push(rblk.entries[bi])
                continue
            sol = Solution(root, cur[0], cur[1], cur[2], Join(left, right))
        elif kind == "buf":
            _, root, sources, buffer_params = ctx
            si, bj = divmod(i, len(buffer_params))
            src = _src_solution(sources[si], memo)
            if src is None:
                push(sources[si])
                continue
            sol = Solution(root, cur[0], cur[1], cur[2],
                           Buffered(src, buffer_params[bj][0]))
        elif kind == "ext1":
            _, root, src_e, length, width = ctx
            src = _src_solution(src_e, memo)
            if src is None:
                push(src_e)
                continue
            sol = Solution(root, cur[0], cur[1], cur[2],
                           Extend(src, length, width))
        elif kind == "buf1":
            _, root, src_e, buffer = ctx
            src = _src_solution(src_e, memo)
            if src is None:
                push(src_e)
                continue
            sol = Solution(root, cur[0], cur[1], cur[2],
                           Buffered(src, buffer))
        else:  # "reloc"
            _, root, starts, blocks, opts, flat_loads, flat_reqs, \
                buffer_params = ctx
            bi = bisect_right(starts, i) - 1
            start, sources, length, width = blocks[bi]
            si, opt = divmod(i - start, opts)
            src = _src_solution(sources[si], memo)
            if src is None:
                push(sources[si])
                continue
            if opt == 0:
                sol = Solution(root, cur[0], cur[1], cur[2],
                               Extend(src, length, width))
            else:
                # Rebuild the intermediate moved solution the buffer
                # drives; its triple sits in column 0 of the same row.
                base_i = start + si * opts
                moved = Solution(root, float(flat_loads[base_i]),
                                 float(flat_reqs[base_i]),
                                 cur[2] - buffer_params[opt - 1][2],
                                 Extend(src, length, width))
                sol = Solution(root, cur[0], cur[1], cur[2],
                               Buffered(moved, buffer_params[opt - 1][0]))
        memo[key] = sol
        stack.pop()
    return memo[id(entry)]


class PendingCurve:
    """Engine-internal live curve for the numpy backend.

    Same bucket-map semantics as :class:`~repro.curves.curve.SolutionCurve`
    — per ``(load bucket, area bucket)`` cell, keep the entry with the
    strictly highest required time, first occupant winning ties — but the
    stored values are pending-entry tuples, so generating and culling
    candidates never constructs :class:`Solution` objects.  Survivors are
    frozen, still deferred, into :class:`CurveSoA` blocks; only
    :attr:`solutions` / :meth:`to_solution_curve` (the thaw/traceback
    boundary) materialize.

    Iterating a ``PendingCurve`` yields the raw entry tuples; that is the
    engine-facing snapshot format the pending kernels consume.
    """

    __slots__ = ("root", "config", "_by_bucket", "_pruned",
                 "_inv_load", "_inv_area", "_cache")

    def __init__(self, root, config):
        self.root = root
        self.config = config
        self._by_bucket: dict = {}
        self._pruned = True
        self._inv_load = 1.0 / config.load_step
        self._inv_area = 1.0 / config.area_step
        #: Attribute vectors (loads, reqs, areas) aligned with the bucket
        #: map's dict order, produced as a by-product of the vectorized
        #: prune.  Valid only while ``_pruned`` is True; consumed by the
        #: buffer and relocation-snapshot stages to skip re-extraction.
        self._cache = None

    def __len__(self) -> int:
        return len(self._by_bucket)

    def __iter__(self):
        return iter(self._by_bucket.values())

    def __bool__(self) -> bool:
        return bool(self._by_bucket)

    def add(self, solution: Solution) -> bool:
        """Insert one already-materialized solution."""
        key = (round(solution.load * self._inv_load),
               round(solution.area * self._inv_area))
        incumbent = self._by_bucket.get(key)
        if incumbent is None or incumbent[1] < solution.required_time:
            self._by_bucket[key] = (solution.load, solution.required_time,
                                    solution.area, None, solution)
            self._pruned = False
            return True
        return False

    def extend(self, solutions) -> int:
        """Merge a frozen sequence; return how many entries stored.

        A :class:`CurveSoA` block merges without materializing: the
        block's own entry tuples are inserted directly (their attribute
        triples and contexts are exactly what this curve would store).
        """
        if isinstance(solutions, CurveSoA):
            entries = solutions.entries
            if len(entries) >= EXTEND_MIN_ITEMS:
                win, klo, kar, _l, _r, _a = _winner_stream(
                    self._inv_load, self._inv_area,
                    solutions.loads, solutions.reqs, solutions.areas)
                return _merge_entries(self, zip(klo, kar),
                                      map(entries.__getitem__, win))
            by_bucket = self._by_bucket
            get = by_bucket.get
            inv_load = self._inv_load
            inv_area = self._inv_area
            stored = 0
            for t in entries:
                key = (round(t[0] * inv_load), round(t[2] * inv_area))
                incumbent = get(key)
                if incumbent is None or incumbent[1] < t[1]:
                    by_bucket[key] = t
                    stored += 1
            if stored:
                self._pruned = False
            return stored
        return sum(1 for s in solutions if self.add(s))

    def prune(self) -> None:
        """Remove 3-D dominated entries and enforce the capacity cap.

        Mirrors ``SolutionCurve.prune`` (same survivors, same resulting
        dict order, same instrumentation) over pending entries.
        """
        if self._pruned:
            return
        rec = active_recorder()
        if rec.enabled:
            with rec.span(metric.SPAN_KERNEL_PRUNE):
                self._prune_impl(rec)
        else:
            self._prune_impl(rec)

    def _prune_impl(self, rec) -> None:
        before = len(self._by_bucket)
        items = list(self._by_bucket.items())
        result = _pending_prune_vector(items, self.config.max_solutions)
        if result is None:
            survivors = _pending_prune_scalar(items)
            if len(survivors) > self.config.max_solutions:
                survivors = _pending_thin(survivors,
                                          self.config.max_solutions)
            self._cache = None
        else:
            survivors, self._cache = result
        self._by_bucket = dict(survivors)
        self._pruned = True
        if rec.enabled:
            kept = len(self._by_bucket)
            rec.incr(metric.CURVE_PRUNE_CALLS)
            rec.incr(metric.CURVE_PRUNE_REMOVED, before - kept)
            rec.record(metric.CURVE_PRUNE_SURVIVOR_RATIO,
                       kept / before if before else 1.0)

    def freeze(self) -> CurveSoA:
        """Freeze into a (still deferred) :class:`CurveSoA` block."""
        return CurveSoA(entries=sorted(self._by_bucket.values(),
                                       key=_entry_order))

    @property
    def solutions(self) -> List[Solution]:
        """Materialized survivors, sorted by ascending load.

        Same order as ``SolutionCurve.solutions``: stable sort of the
        dict values by ``(load, -required_time, area)``.
        """
        entries = sorted(self._by_bucket.values(), key=_entry_order)
        memo: dict = {}
        return [resolve_entry(t, memo) for t in entries]

    def to_solution_curve(self):
        """Materialize into an equivalent :class:`SolutionCurve`.

        Preserves bucket keys, dict order, and the pruned flag, so
        backend-agnostic callers receive exactly the live-curve state the
        python backend would have produced.
        """
        from repro.curves.curve import SolutionCurve

        curve = SolutionCurve(self.root, self.config)
        memo: dict = {}
        curve._by_bucket = {key: resolve_entry(t, memo)
                            for key, t in self._by_bucket.items()}
        curve._pruned = self._pruned
        return curve


# ----------------------------------------------------------------------
# The three DP combinators over pending curves
# ----------------------------------------------------------------------

def pending_join(curve: PendingCurve, lefts, rights) -> None:
    """Cross-product join of two frozen blocks into ``curve``.

    Equivalent to the scalar double loop (left-major): loads and areas
    add, required time takes the branch minimum; winners store a pending
    entry indexing into the flattened cross product.
    """
    lefts = as_soa(lefts)
    rights = as_soa(rights)
    left_entries = lefts.entries
    right_entries = rights.entries
    nb = len(right_entries)
    ctx = ("join", curve.root, lefts, rights, nb)
    by_bucket = curve._by_bucket
    inv_load = curve._inv_load
    inv_area = curve._inv_area
    if len(left_entries) * nb < JOIN_MIN_PAIRS:
        stored = 0
        get = by_bucket.get
        i = 0
        for ta in left_entries:
            a_load = ta[0]
            a_req = ta[1]
            a_area = ta[2]
            for tb in right_entries:
                load = a_load + tb[0]
                b_req = tb[1]
                req = a_req if a_req < b_req else b_req
                area = a_area + tb[2]
                key = (round(load * inv_load), round(area * inv_area))
                incumbent = get(key)
                if incumbent is None or incumbent[1] < req:
                    by_bucket[key] = (load, req, area, ctx, i)
                    stored += 1
                i += 1
        if stored:
            curve._pruned = False
        return
    loads = _np.add.outer(lefts.loads, rights.loads).ravel()
    reqs = _np.minimum.outer(lefts.reqs, rights.reqs).ravel()
    areas = _np.add.outer(lefts.areas, rights.areas).ravel()
    win, klo, kar, w_loads, w_reqs, w_areas = _winner_stream(
        inv_load, inv_area, loads, reqs, areas)
    _merge_entries(curve, zip(klo, kar),
                   zip(w_loads, w_reqs, w_areas, repeat(ctx), win))


def pending_buffer(curve: PendingCurve, sources, lib,
                   from_curve: bool = False) -> int:
    """Offer every library buffer at the root of each source.

    ``sources`` holds pending entries (``list(curve)``) or plain
    Solutions (sink base construction).  Stream order is source-major,
    buffer-minor — the scalar ``_buffer_all`` order.  ``from_curve``
    asserts that ``sources`` is the curve's own bucket map in dict order,
    allowing the prune-time attribute cache to be reused.  ``lib`` is a
    :class:`BufferVectors` (or a richer
    :class:`repro.curves.contract.KernelLibrary`, whose shadow table
    enables the Li & Shi predecessor skips on the scalar path).  Returns
    the number of offers skipped by the shadow table.
    """
    sources = list(sources)
    buffer_params = lib.params
    ns = len(sources)
    m = len(buffer_params)
    if ns == 0 or m == 0:
        return 0
    by_bucket = curve._by_bucket
    inv_load = curve._inv_load
    inv_area = curve._inv_area
    solution_sources = isinstance(sources[0], Solution)
    if ns * m < BUFFER_MIN_OFFERS:
        cap_keys = getattr(lib, "cap_keys", None)
        if cap_keys is None:
            cap_keys = [round(p[1] * inv_load) for p in buffer_params]
        # When no two buffers share a load bucket the shadow skip can
        # never fire; drop its per-offer bookkeeping entirely.
        shadows = (lib.shadows
                   if getattr(lib, "has_shadows", False) else None)
        ctx = ("buf", curve.root, sources, buffer_params)
        get = by_bucket.get
        stored = 0
        skipped = 0
        i = 0
        if shadows is None:
            pairs = list(zip(cap_keys, buffer_params))
            for s in sources:
                if solution_sources:
                    load, req, area = s.load, s.required_time, s.area
                else:
                    load, req, area = s[0], s[1], s[2]
                for ck, (buffer, input_cap, buf_area, d0, slope) in pairs:
                    new_req = req - d0 - slope * load
                    new_area = area + buf_area
                    key = (ck, round(new_area * inv_area))
                    incumbent = get(key)
                    if incumbent is None or incumbent[1] < new_req:
                        by_bucket[key] = (input_cap, new_req, new_area,
                                          ctx, i)
                        stored += 1
                    i += 1
            if stored:
                curve._pruned = False
            return 0
        reqs_j = [0.0] * m
        akeys_j = [0] * m
        for s in sources:
            if solution_sources:
                load, req, area = s.load, s.required_time, s.area
            else:
                load, req, area = s[0], s[1], s[2]
            for bj, (buffer, input_cap, buf_area, d0,
                     slope) in enumerate(buffer_params):
                new_req = req - d0 - slope * load
                new_area = area + buf_area
                akey = round(new_area * inv_area)
                reqs_j[bj] = new_req
                akeys_j[bj] = akey
                hit = False
                for pi in shadows[bj]:
                    if akeys_j[pi] == akey and reqs_j[pi] >= new_req:
                        hit = True
                        break
                if hit:
                    skipped += 1
                    i += 1
                    continue
                key = (cap_keys[bj], akey)
                incumbent = get(key)
                if incumbent is None or incumbent[1] < new_req:
                    by_bucket[key] = (input_cap, new_req, new_area, ctx, i)
                    stored += 1
                i += 1
        if stored:
            curve._pruned = False
        return skipped
    if (from_curve and curve._pruned and curve._cache is not None
            and len(curve._cache[0]) == ns):
        base_loads, base_reqs, base_areas = curve._cache
    elif solution_sources:
        base = CurveSoA(sources)
        base_loads, base_reqs, base_areas = base.loads, base.reqs, base.areas
    else:
        base = TupleSoA(sources)
        base_loads, base_reqs, base_areas = base.loads, base.reqs, base.areas
    loads = _np.broadcast_to(lib.caps, (ns, m))
    reqs = (base_reqs[:, None] - lib.d0) \
        - lib.slope * base_loads[:, None]
    areas = base_areas[:, None] + lib.areas
    ctx = ("buf", curve.root, sources, buffer_params)
    win, klo, kar, w_loads, w_reqs, w_areas = _winner_stream(
        inv_load, inv_area, loads.reshape(-1), reqs.ravel(), areas.ravel())
    _merge_entries(curve, zip(klo, kar),
                   zip(w_loads, w_reqs, w_areas, repeat(ctx), win))
    return 0


def pending_snapshots(curves: Sequence[PendingCurve]) -> List[TupleSoA]:
    """Snapshot every live curve for one relocation round.

    Curves that are freshly pruned donate their prune-time attribute
    cache (same dict order), so the snapshot's vectors come for free.
    """
    snaps = []
    for curve in curves:
        snap = TupleSoA(list(curve))
        if curve._pruned and curve._cache is not None \
                and len(curve._cache[0]) == len(snap.entries):
            snap._loads, snap._reqs, snap._areas = curve._cache
        snaps.append(snap)
    return snaps


def pending_relocate(curve: PendingCurve, to_idx: int,
                     snapshots: Sequence[TupleSoA], wire_res, wire_cap,
                     candidates, wire_widths, lib) -> bool:
    """One target's relocation relaxation, batched over all sources.

    Builds the scalar stream — sources ascending, then wire widths, then
    snapshot solutions, each offering the unbuffered move followed by
    every buffer — as one concatenated triple batch.  Returns the scalar
    loop's ``changed`` flag (any bucket accepted an entry).
    """
    buffer_params = lib.params
    m = len(buffer_params)
    opts = 1 + m
    root = curve.root
    stream_total = 0
    for frm_idx, snapshot in enumerate(snapshots):
        if frm_idx != to_idx:
            stream_total += len(snapshot) * len(wire_widths) * opts
    if stream_total == 0:
        return False
    if stream_total < RELOCATE_MIN_STREAM:
        return _pending_relocate_scalar(
            curve, to_idx, snapshots, wire_res, wire_cap, candidates,
            wire_widths, lib)
    blocks = []       # (flat offset, snapshot entries, length, width)
    starts = []
    sizes = []        # per-block source count
    block_res = []    # per-block scalar wire parameters
    block_cap = []
    src_loads = []
    src_reqs = []
    src_areas = []
    offset = 0
    for frm_idx, snapshot in enumerate(snapshots):
        if frm_idx == to_idx or not snapshot.entries:
            continue
        base_res = wire_res[frm_idx][to_idx]
        base_cap = wire_cap[frm_idx][to_idx]
        length = candidates[frm_idx].manhattan_to(root)
        ns = len(snapshot.entries)
        for width in wire_widths:
            blocks.append((offset, snapshot.entries, length, width))
            starts.append(offset)
            sizes.append(ns)
            block_res.append(base_res / width)
            block_cap.append(base_cap * width)
            src_loads.append(snapshot.loads)
            src_reqs.append(snapshot.reqs)
            src_areas.append(snapshot.areas)
            offset += ns * opts
    if not blocks:
        return False
    cat_loads = _np.concatenate(src_loads)
    cat_reqs = _np.concatenate(src_reqs)
    cat_areas = _np.concatenate(src_areas)
    sizes = _np.array(sizes)
    res_rep = _np.repeat(_np.array(block_res), sizes)
    cap_rep = _np.repeat(_np.array(block_cap), sizes)
    moved_load = cat_loads + cap_rep
    moved_req = cat_reqs - res_rep * (0.5 * cap_rep + cat_loads)
    n = len(cat_loads)
    loads = _np.empty((n, opts))
    reqs = _np.empty((n, opts))
    areas = _np.empty((n, opts))
    loads[:, 0] = moved_load
    reqs[:, 0] = moved_req
    areas[:, 0] = cat_areas
    if m:
        loads[:, 1:] = lib.caps
        reqs[:, 1:] = (moved_req[:, None] - lib.d0) \
            - lib.slope * moved_load[:, None]
        areas[:, 1:] = cat_areas[:, None] + lib.areas
    flat_loads = loads.ravel()
    flat_reqs = reqs.ravel()
    flat_areas = areas.ravel()
    ctx = ("reloc", root, starts, blocks, opts, flat_loads, flat_reqs,
           buffer_params)
    win, klo, kar, w_loads, w_reqs, w_areas = _winner_stream(
        curve._inv_load, curve._inv_area, flat_loads, flat_reqs, flat_areas)
    return _merge_entries(
        curve, zip(klo, kar),
        zip(w_loads, w_reqs, w_areas, repeat(ctx), win)) > 0


def _pending_relocate_scalar(curve: PendingCurve, to_idx: int,
                             snapshots, wire_res, wire_cap, candidates,
                             wire_widths, lib) -> bool:
    """Scalar relocation for small streams; stores deferred entries
    (sharing the intermediate moved entry, like the old eager path
    shared the moved solution)."""
    buffer_params = lib.params
    m = len(buffer_params)
    cap_keys = getattr(lib, "cap_keys", None)
    root = curve.root
    by_bucket = curve._by_bucket
    inv_load = curve._inv_load
    inv_area = curve._inv_area
    if cap_keys is None:
        cap_keys = [round(p[1] * inv_load) for p in buffer_params]
    # When no two buffers share a load bucket the shadow skip can never
    # fire; run the lean loop without its per-offer bookkeeping.
    shadows = lib.shadows if getattr(lib, "has_shadows", False) else None
    pairs = list(zip(cap_keys, buffer_params))
    changed = False
    get = by_bucket.get
    reqs_j = [0.0] * m
    akeys_j = [0] * m
    for frm_idx, snapshot in enumerate(snapshots):
        if frm_idx == to_idx or not snapshot.entries:
            continue
        base_res = wire_res[frm_idx][to_idx]
        base_cap = wire_cap[frm_idx][to_idx]
        length = candidates[frm_idx].manhattan_to(root)
        for width in wire_widths:
            res = base_res / width
            cap = base_cap * width
            half_self = 0.5 * cap
            for t in snapshot.entries:
                s_load = t[0]
                load = s_load + cap
                req = t[1] - res * (half_self + s_load)
                area = t[2]
                moved_t = None
                key = (round(load * inv_load), round(area * inv_area))
                incumbent = get(key)
                if incumbent is None or incumbent[1] < req:
                    moved_t = (load, req, area,
                               ("ext1", root, t, length, width), 0)
                    by_bucket[key] = moved_t
                    changed = True
                if shadows is None:
                    for ck, (buffer, input_cap, buf_area, d0,
                             slope) in pairs:
                        b_req = req - d0 - slope * load
                        b_area = area + buf_area
                        b_key = (ck, round(b_area * inv_area))
                        incumbent = get(b_key)
                        if incumbent is None or incumbent[1] < b_req:
                            if moved_t is None:
                                moved_t = (load, req, area,
                                           ("ext1", root, t, length,
                                            width), 0)
                            by_bucket[b_key] = (
                                input_cap, b_req, b_area,
                                ("buf1", root, moved_t, buffer), 0)
                            changed = True
                    continue
                for bj, (buffer, input_cap, buf_area, d0,
                         slope) in enumerate(buffer_params):
                    b_req = req - d0 - slope * load
                    b_area = area + buf_area
                    akey = round(b_area * inv_area)
                    reqs_j[bj] = b_req
                    akeys_j[bj] = akey
                    hit = False
                    for pi in shadows[bj]:
                        if akeys_j[pi] == akey and reqs_j[pi] >= b_req:
                            hit = True
                            break
                    if hit:
                        continue
                    b_key = (cap_keys[bj], akey)
                    incumbent = get(b_key)
                    if incumbent is None or incumbent[1] < b_req:
                        if moved_t is None:
                            moved_t = (load, req, area,
                                       ("ext1", root, t, length, width), 0)
                        by_bucket[b_key] = (input_cap, b_req, b_area,
                                            ("buf1", root, moved_t, buffer),
                                            0)
                        changed = True
    if changed:
        curve._pruned = False
    return changed


# ----------------------------------------------------------------------
# Pruning helpers (pending entries)
# ----------------------------------------------------------------------

def _survivor_indices(loads, areas, reqs):
    """Indices of 3-D Pareto survivors, in ``(load, area, -req)`` order.

    A numpy ``lexsort`` replaces the Python attribute-key sort (the
    expensive part of the scalar prune at scale), then the staircase
    sweep of ``curve._pareto_prune`` runs over the sorted columns as
    plain floats: entry i is dominated iff some kept earlier entry has
    ``area <= area_i`` and ``req >= req_i`` (earlier position already
    guarantees ``load <= load_i``).  Restricting dominators to *kept*
    entries loses nothing, by transitivity: a removed dominator is
    itself dominated by a kept entry that also dominates i.
    """
    n = len(loads)
    order = _np.lexsort((_np.arange(n), -reqs, areas, loads))
    s_areas = areas[order].tolist()
    s_reqs = reqs[order].tolist()
    kept_pos: List[int] = []
    keep = kept_pos.append
    stair_areas: List[float] = []    # ascending
    stair_reqs: List[float] = []     # prefix-max of required times
    br = bisect_right
    pos = -1
    for area, req in zip(s_areas, s_reqs):
        pos += 1
        idx = br(stair_areas, area)
        if idx and stair_reqs[idx - 1] >= req:
            continue  # dominated
        keep(pos)
        stair_areas.insert(idx, area)
        best_before = stair_reqs[idx - 1] if idx else float("-inf")
        stair_reqs.insert(idx, max(best_before, req))
        for later in range(idx + 1, len(stair_reqs)):
            if stair_reqs[later] >= stair_reqs[later - 1]:
                break
            stair_reqs[later] = stair_reqs[later - 1]
    return order[kept_pos]


def pareto_prune_items(items) -> Optional[list]:
    """Vectorized staircase prune over ``(key, Solution)`` items.

    Returns survivors in the scalar sweep's order, or None when the batch
    is too small to be worth vectorizing (caller runs the scalar sweep).
    """
    n = len(items)
    if n < PRUNE_MIN_ITEMS:
        return None
    flat = [x for kv in items
            for x in (kv[1].load, kv[1].area, kv[1].required_time)]
    matrix = _np.array(flat, dtype=_np.float64).reshape(n, 3)
    keep = _survivor_indices(matrix[:, 0], matrix[:, 1], matrix[:, 2])
    return [items[i] for i in keep.tolist()]


def _pending_prune_vector(items, cap: int):
    """Vectorized prune + capacity thin over ``(key, entry)`` items.

    Returns ``(survivors, (loads, reqs, areas))`` — the surviving items
    in the scalar sweep's order plus their attribute vectors in that same
    order — or None when the batch is outside the vectorization window.
    Thinning replicates ``curve._thin`` exactly: the three extreme points
    (first-occurrence ties, like ``max``/``min``) are forced, the rest is
    index-even sampled along the ``(load, required_time)``-sorted front.
    """
    n = len(items)
    if n < PENDING_PRUNE_MIN_ITEMS:
        return None
    flat = [x for kv in items for x in (kv[1][0], kv[1][2], kv[1][1])]
    matrix = _np.array(flat, dtype=_np.float64).reshape(n, 3)
    keep = _survivor_indices(matrix[:, 0], matrix[:, 1], matrix[:, 2])
    s_loads = matrix[:, 0][keep]
    s_areas = matrix[:, 1][keep]
    s_reqs = matrix[:, 2][keep]
    k = len(keep)
    if k <= cap:
        survivors = [items[i] for i in keep.tolist()]
        return survivors, (s_loads, s_reqs, s_areas)
    forced = []
    for i in (int(_np.argmax(s_reqs)), int(_np.argmin(s_loads)),
              int(_np.argmin(s_areas))):
        if i not in forced:
            forced.append(i)
    rest_mask = _np.ones(k, dtype=bool)
    rest_mask[forced] = False
    rest = _np.flatnonzero(rest_mask)
    rorder = _np.lexsort((_np.arange(len(rest)),
                          s_reqs[rest], s_loads[rest]))
    rest_sorted = rest[rorder]
    slots = cap - len(forced)
    nr = len(rest_sorted)
    if slots <= 0:
        picked = []
    elif nr <= slots:
        picked = rest_sorted.tolist()
    else:
        stride = nr / slots
        picked = [int(rest_sorted[int(i * stride)]) for i in range(slots)]
    sel = _np.array(forced + picked, dtype=_np.intp)
    survivors = [items[i] for i in keep[sel].tolist()]
    return survivors, (s_loads[sel], s_reqs[sel], s_areas[sel])


def _pending_prune_scalar(items) -> list:
    """Scalar staircase sweep over ``(key, entry)`` items — the pending
    mirror of ``repro.curves.curve._pareto_prune``."""
    # Decorated sort: C tuple comparison, no per-item key callable; the
    # index tiebreak keeps the stable order sorted(key=...) would give
    # and stops comparison ever reaching the (unorderable) items.
    order = [(kv[1][0], kv[1][2], -kv[1][1], i)
             for i, kv in enumerate(items)]
    order.sort()
    kept = []
    stair_areas: List[float] = []
    stair_reqs: List[float] = []
    for _load, area, _neg_req, i in order:
        key, t = items[i]
        req = t[1]
        idx = bisect_right(stair_areas, area)
        if idx > 0 and stair_reqs[idx - 1] >= req:
            continue  # dominated
        kept.append((key, t))
        stair_areas.insert(idx, area)
        best_before = stair_reqs[idx - 1] if idx > 0 else float("-inf")
        stair_reqs.insert(idx, max(best_before, req))
        for later in range(idx + 1, len(stair_reqs)):
            if stair_reqs[later] >= stair_reqs[later - 1]:
                break
            stair_reqs[later] = stair_reqs[later - 1]
    return kept


def _pending_thin(items: list, cap: int) -> list:
    """Capacity cap over pending items — mirrors ``curve._thin``."""
    # Single fused pass; strict comparisons keep the first occurrence,
    # matching max()/min() tie behavior.
    first = items[0][1]
    by_req = by_load = by_area = 0
    best_req, best_load, best_area = first[1], first[0], first[2]
    for i in range(1, len(items)):
        t = items[i][1]
        if t[1] > best_req:
            best_req = t[1]
            by_req = i
        if t[0] < best_load:
            best_load = t[0]
            by_load = i
        if t[2] < best_area:
            best_area = t[2]
            by_area = i
    # Positional dedup, mirroring curve._thin (no id()-derived keys).
    forced = {i: items[i] for i in dict.fromkeys((by_req, by_load, by_area))}
    rest = [kv for i, kv in enumerate(items) if i not in forced]
    slots = cap - len(forced)
    rest.sort(key=lambda kv: (kv[1][0], kv[1][1]))
    if slots <= 0:
        picked = []
    elif len(rest) <= slots:
        picked = rest
    else:
        stride = len(rest) / slots
        picked = [rest[int(i * stride)] for i in range(slots)]
    return list(forced.values()) + picked
