"""The curve-kernel contract: one array-level interface, two backends.

The *PTREE dynamic program is, operationally, five operations over
solution-curve blocks:

``merge``
    fold an already frozen block into a live curve (table reuse);
``join``
    cross-product combine two frozen blocks into a live curve
    (``S_b(p,i,j) = S(p,i,u) + S(p,u+1,j)``);
``add_buffer``
    offer every library buffer at the root of each solution
    (the ``*`` of *PTREE);
``relocate_round``
    one relaxation pass of ``S(p) = min{d(p,p') + S(p')}`` over the
    candidate set;
``prune`` / ``freeze`` / ``traceback`` / ``thaw``
    cull dominated entries, snapshot a live curve into the frozen block
    format, and materialize :class:`~repro.curves.solution.Solution`
    objects out of a block (traceback) or a live curve (thaw).

This module pins that interface as :class:`CurveKernel` and keeps a
registry of implementations, mirroring how staticcheck rules register:
each backend module defines a subclass decorated with
:func:`register_kernel`, and the engine resolves one by name at context
creation.  Two backends ship — ``"python"``
(:mod:`repro.curves.backend_python`, scalar loops over
:class:`~repro.curves.curve.SolutionCurve`) and ``"numpy"``
(:mod:`repro.curves.backend_numpy`, deferred structure-of-arrays blocks
from :mod:`repro.curves.kernels`) — and are bit-identical by contract:
the golden suites and ``bench check_suite`` pin equal tree signatures.
A native or GPU backend is a third registration away; engine layers
(``core``, ``routing``, ``service``, ``pipeline``) never see
representation details (the ``LAY-KERNEL`` staticcheck rule enforces
this).

The contract also owns :class:`KernelLibrary`, the per-net buffer
library preprocessing shared by both backends — notably the Li & Shi
predecessor ("shadow") table: for each buffer ``j``, the earlier
library buffers whose quantized input capacitance lands in the same
load bucket.  When such a predecessor's offer (for the same source)
achieved the same area bucket with a required time at least as high,
offer ``j`` maps to the same curve cell with a value the bucket map
would reject — so it is skipped before any key is built.  The skip
condition compares *computed* candidate attributes, never re-derived
real-arithmetic bounds, so it is exact under floating point and cannot
perturb results.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.curves.curve import CurveConfig, SolutionCurve
from repro.curves.kernels import BACKENDS, numpy_available, resolve_backend
from repro.curves.solution import Solution
from repro.geometry.point import Point
from repro.tech.buffer import Buffer

__all__ = [
    "BACKENDS",
    "BufferParams",
    "CurveKernel",
    "KernelLibrary",
    "get_kernel",
    "kernel_names",
    "numpy_available",
    "register_kernel",
    "resolve_backend",
]

#: Per-buffer precomputed parameters:
#: (buffer, input_cap, area, delay_intercept, delay_slope).
BufferParams = Tuple[Buffer, float, float, float, float]


class KernelLibrary:
    """Preprocessed buffer library shared by every kernel operation.

    ``params`` keeps the affine per-buffer tuples; ``cap_keys`` their
    quantized input-capacitance (load) bucket halves; ``shadows[j]`` the
    indices of earlier buffers with the *same* load bucket — the only
    predecessors whose offers can collide with buffer ``j``'s in the
    bucket map, and therefore the only ones the Li & Shi skip must
    consult.  With typical libraries and quantization steps most shadow
    lists are empty and the skip costs one truthiness test per offer.
    """

    __slots__ = ("params", "cap_keys", "shadows", "has_shadows")

    def __init__(self, buffer_params: Sequence[BufferParams],
                 curve_config: CurveConfig):
        self.params: List[BufferParams] = list(buffer_params)
        inv_load = 1.0 / curve_config.load_step
        self.cap_keys: List[int] = [round(p[1] * inv_load)
                                    for p in self.params]
        by_key: Dict[int, List[int]] = {}
        shadows: List[Tuple[int, ...]] = []
        for j, key in enumerate(self.cap_keys):
            earlier = by_key.setdefault(key, [])
            shadows.append(tuple(earlier))
            earlier.append(j)
        self.shadows: List[Tuple[int, ...]] = shadows
        #: False when no two buffers share a load bucket — the skip can
        #: never fire, so hot loops drop its bookkeeping entirely.
        self.has_shadows: bool = any(shadows)

    def __len__(self) -> int:
        return len(self.params)


class CurveKernel:
    """Abstract curve-kernel backend.

    One instance per registered backend (stateless; per-net state lives
    in the library and the curves).  ``Curve`` below means the backend's
    live-curve type; ``Block`` its frozen-curve type.  Both must satisfy
    the small structural protocol the engine relies on: live curves
    expose ``add`` / ``extend`` / ``prune`` / ``solutions`` / ``root``
    and iterate their survivors; frozen blocks expose ``len`` and
    iterate materialized solutions.
    """

    #: Registry name; also the ``CurveConfig.backend`` value it serves.
    name: str = ""

    def make_library(self, buffer_params: Sequence[BufferParams],
                     curve_config: CurveConfig) -> KernelLibrary:
        """Preprocess the buffer library once per net."""
        raise NotImplementedError

    def new_curve(self, root: Point, config: CurveConfig):
        """One empty live curve rooted at ``root``."""
        raise NotImplementedError

    def merge(self, curve, block) -> int:
        """Fold a frozen block into a live curve; return entries stored."""
        raise NotImplementedError

    def join(self, curve, lefts, rights) -> None:
        """Accumulate the cross product of two frozen blocks into
        ``curve`` (left-major stream order)."""
        raise NotImplementedError

    def add_buffer(self, curve, library: KernelLibrary, sources=None,
                   from_curve: bool = False) -> int:
        """Offer every library buffer at the root of each source.

        ``sources=None`` buffers the curve's own current contents (the
        caller must have pruned first); ``from_curve`` asserts that an
        explicit ``sources`` is the curve's own contents in iteration
        order, unlocking backend caches.  Returns the number of offers
        skipped by the shadow table (0 when it never fired).
        """
        raise NotImplementedError

    def relocate_round(self, curves: Sequence, targets: Sequence[int],
                       geom, library: KernelLibrary) -> bool:
        """One relaxation pass over all target candidates.

        ``geom`` supplies the candidate geometry (duck-typed
        :class:`repro.core.star_ptree.PTreeContext`: ``wire_res``,
        ``wire_cap``, ``candidates``, ``wire_widths``).  Sources are
        snapshotted once for the whole pass, so updates within the pass
        do not feed later targets.  Returns True when any curve changed.
        """
        raise NotImplementedError

    def prune(self, curve) -> None:
        """Cull 3-D dominated entries and enforce the capacity cap."""
        raise NotImplementedError

    def freeze(self, curve):
        """Snapshot a (pruned) live curve into the frozen block format."""
        raise NotImplementedError

    def traceback(self, block) -> List[Solution]:
        """Materialize a frozen block's solutions (curve order)."""
        raise NotImplementedError

    def thaw(self, curve) -> SolutionCurve:
        """Hand a live curve to backend-agnostic callers as an
        equivalent :class:`SolutionCurve` (same buckets, same order)."""
        raise NotImplementedError


_REGISTRY: Dict[str, CurveKernel] = {}


def register_kernel(cls: Type[CurveKernel]) -> Type[CurveKernel]:
    """Class decorator registering a :class:`CurveKernel` implementation
    under its ``name`` (last registration wins, like staticcheck rules)."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    _REGISTRY[cls.name] = cls()
    return cls


def kernel_names() -> List[str]:
    """Registered backend names (built-ins always present)."""
    _load_builtins()
    return sorted(_REGISTRY)


def get_kernel(name: str) -> CurveKernel:
    """Resolve a backend name to its registered kernel.

    Applies the same graceful degradation as
    :func:`repro.curves.kernels.resolve_backend` (``"numpy"`` without
    NumPy runs the python kernel), so engine code can request the
    configured name directly.
    """
    _load_builtins()
    if name in BACKENDS:
        name = resolve_backend(name)
    kernel = _REGISTRY.get(name)
    if kernel is None:
        raise ValueError(
            f"unknown curve kernel {name!r}; registered: {kernel_names()}")
    return kernel


def _load_builtins() -> None:
    # Imported lazily: the backend modules import this one for the
    # decorator, so importing them at module scope would cycle.
    import repro.curves.backend_python  # noqa: F401
    import repro.curves.backend_numpy  # noqa: F401
