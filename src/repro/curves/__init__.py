"""Three-dimensional non-inferior solution curves.

Every dynamic-programming table in the library stores, per candidate root
location, a *solution curve*: the set of non-inferior
``(load, required time, total buffer area)`` triples of partial buffered
routing structures (Figure 8 of the paper).  A solution σ2 is *inferior* to
σ1 iff σ1 is no worse on all three axes (Definition 6); pruning inferior
solutions preserves optimality (Lemma 9) and, once loads and areas are
quantized to pseudo-polynomially many buckets, bounds every curve to
O(n·m·q) entries (Lemma 10).

The load and required-time axes make the principle of dynamic programming
valid (a sub-solution's interaction with the rest of the tree is fully
captured by its root load and required time); the area axis supports both
problem variants (max required time under an area budget, min area over a
required-time floor).
"""

from repro.curves.solution import (
    Solution,
    SinkLeaf,
    Extend,
    Join,
    Buffered,
    DriverArm,
    sink_leaf_solution,
    check_solution,
)
from repro.curves.curve import CurveConfig, SolutionCurve
from repro.curves.kernels import (
    BACKENDS,
    CurveSoA,
    PendingCurve,
    numpy_available,
    resolve_backend,
)
from repro.curves.ops import extend_curve, join_curves, buffered_options

__all__ = [
    "BACKENDS",
    "CurveSoA",
    "PendingCurve",
    "numpy_available",
    "resolve_backend",
    "Solution",
    "SinkLeaf",
    "Extend",
    "Join",
    "Buffered",
    "DriverArm",
    "sink_leaf_solution",
    "check_solution",
    "CurveConfig",
    "SolutionCurve",
    "extend_curve",
    "join_curves",
    "buffered_options",
]
