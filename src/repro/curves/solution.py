"""Solutions and their traceback records.

A :class:`Solution` is one point on a three-dimensional solution curve: a
partial buffered routing structure summarized by the triple
``(load, required_time, area)`` plus its root location.  The full structure
is not materialized during the DP — instead each solution carries a small
*detail* record (a tagged union over the construction steps below), and the
winning solution's tree is rebuilt at extraction time by walking the detail
graph (lines 21–22 of BUBBLE_CONSTRUCT).

Solutions are created millions of times inside the dynamic programs, so
they are plain ``__slots__`` classes with no validation in the constructor;
:func:`check_solution` provides the invariant checks for tests and for the
extraction path, where a malformed solution must not slip through silently.

Detail records
--------------
``SinkLeaf``  — the bare sink pin (no wire yet).
``Extend``    — a wire from the child's root up to a new root location.
``Join``      — two sub-structures merged at a shared root location.
``Buffered``  — a library buffer placed at the root, driving the child.
``DriverArm`` — the net driver connected on top of the final structure.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.geometry.point import Point
from repro.tech.buffer import Buffer


class SinkLeaf:
    """The sub-structure is a single sink pin, rooted at the pin itself."""

    __slots__ = ("sink_index",)

    def __init__(self, sink_index: int):
        self.sink_index = sink_index


class Extend:
    """A wire of ``length`` um from ``child``'s root to the new root.

    ``width`` is the wire-sizing multiplier (1.0 = minimum width): a wider
    wire has proportionally lower resistance and higher capacitance, the
    first-order sizing model of [LCLH96]'s simultaneous wire sizing.
    """

    __slots__ = ("child", "length", "width")

    def __init__(self, child: "Solution", length: float,
                 width: float = 1.0):
        self.child = child
        self.length = length
        self.width = width


class Join:
    """Two sub-structures sharing the same root location."""

    __slots__ = ("left", "right")

    def __init__(self, left: "Solution", right: "Solution"):
        self.left = left
        self.right = right


class Buffered:
    """A buffer at the root driving ``child`` (rooted at the same point)."""

    __slots__ = ("child", "buffer")

    def __init__(self, child: "Solution", buffer: Buffer):
        self.child = child
        self.buffer = buffer


class DriverArm:
    """The net driver (source gate) driving the completed structure."""

    __slots__ = ("child", "wire_length")

    def __init__(self, child: "Solution", wire_length: float):
        self.child = child
        self.wire_length = wire_length


Detail = Union[SinkLeaf, Extend, Join, Buffered, DriverArm]


class Solution:
    """One non-inferior point: a partial structure and its 3-D attributes.

    Attributes
    ----------
    root:
        The candidate location at which this structure presents its load.
    load:
        Capacitance (fF) seen by whatever will drive this structure.
    required_time:
        Required time (ps) at the root: the latest moment the signal may
        arrive at ``root`` so that every sink underneath still meets its
        own required time.  Larger is better.
    area:
        Total buffer area (um^2) used inside the structure.
    detail:
        Traceback record (see module docstring).
    """

    __slots__ = ("root", "load", "required_time", "area", "detail")

    def __init__(self, root: Point, load: float, required_time: float,
                 area: float, detail: Detail):
        self.root = root
        self.load = load
        self.required_time = required_time
        self.area = area
        self.detail = detail

    def key(self) -> Tuple[float, float, float]:
        """Return the comparable attribute triple (load, -reqtime, area)."""
        return (self.load, -self.required_time, self.area)

    def dominates(self, other: "Solution") -> bool:
        """Definition 6: True when ``other`` is inferior to ``self``.

        ``self`` dominates when it is no worse on all three axes (lower or
        equal load and area, higher or equal required time).  A solution
        also dominates an attribute-identical one, so exactly one of a set
        of ties survives pruning (insertion order decides which).
        """
        return (self.load <= other.load
                and self.area <= other.area
                and self.required_time >= other.required_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Solution(root={self.root}, load={self.load:.2f}fF, "
                f"req={self.required_time:.2f}ps, area={self.area:.1f}um2, "
                f"{type(self.detail).__name__})")


def sink_leaf_solution(root: Point, sink_index: int, load: float,
                       required_time: float, area: float = 0.0) -> Solution:
    """Build the base-case solution for a bare sink pin."""
    return Solution(root=root, load=load, required_time=required_time,
                    area=area, detail=SinkLeaf(sink_index))


def check_solution(solution: Solution) -> None:
    """Validate basic invariants; raise :class:`ValueError` on violation.

    Used by tests and by the extraction path — never inside the DP's hot
    loops.
    """
    if solution.load < 0:
        raise ValueError(f"negative load: {solution!r}")
    if solution.area < 0:
        raise ValueError(f"negative area: {solution!r}")
    if not isinstance(solution.detail,
                      (SinkLeaf, Extend, Join, Buffered, DriverArm)):
        raise ValueError(f"unknown detail record on {solution!r}")
