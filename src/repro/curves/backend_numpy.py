"""NumPy curve kernel: deferred structure-of-arrays blocks.

Binds the batched kernels of :mod:`repro.curves.kernels` to the
:class:`~repro.curves.contract.CurveKernel` contract.  Live curves are
:class:`~repro.curves.kernels.PendingCurve` (bucket maps of deferred
entry tuples), frozen blocks are :class:`~repro.curves.kernels.CurveSoA`
— still deferred, so the whole Γ table is built without constructing a
single :class:`~repro.curves.solution.Solution`; materialization happens
only in :meth:`traceback` / :meth:`thaw`.  Registered only when NumPy
imported; :func:`repro.curves.contract.get_kernel` degrades ``"numpy"``
to ``"python"`` otherwise.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.curves import kernels
from repro.curves.contract import (
    BufferParams,
    CurveKernel,
    KernelLibrary,
    register_kernel,
)
from repro.curves.curve import CurveConfig, SolutionCurve
from repro.curves.solution import Solution
from repro.geometry.point import Point


class NumpyKernelLibrary(KernelLibrary):
    """Kernel library plus per-buffer column vectors.

    Extends the shared preprocessing (cap keys, shadow table) with the
    NumPy column vectors the batched buffering/relocation kernels
    broadcast over — the union of :class:`KernelLibrary` and
    :class:`~repro.curves.kernels.BufferVectors`.
    """

    __slots__ = ("caps", "areas", "d0", "slope")

    def __init__(self, buffer_params: Sequence[BufferParams],
                 curve_config: CurveConfig):
        super().__init__(buffer_params, curve_config)
        vecs = kernels.BufferVectors(self.params)
        self.caps = vecs.caps
        self.areas = vecs.areas
        self.d0 = vecs.d0
        self.slope = vecs.slope


if kernels.numpy_available():

    @register_kernel
    class NumpyKernel(CurveKernel):
        """Vectorized implementation of the kernel contract."""

        name = "numpy"

        def make_library(self, buffer_params: Sequence[BufferParams],
                         curve_config: CurveConfig) -> NumpyKernelLibrary:
            return NumpyKernelLibrary(buffer_params, curve_config)

        def new_curve(self, root: Point,
                      config: CurveConfig) -> kernels.PendingCurve:
            return kernels.PendingCurve(root, config)

        def merge(self, curve: kernels.PendingCurve, block) -> int:
            return curve.extend(block)

        def join(self, curve: kernels.PendingCurve, lefts, rights) -> None:
            kernels.pending_join(curve, lefts, rights)

        def add_buffer(self, curve: kernels.PendingCurve,
                       library: NumpyKernelLibrary, sources=None,
                       from_curve: bool = False) -> int:
            if sources is None:
                sources = list(curve)
                from_curve = True
            return kernels.pending_buffer(curve, sources, library,
                                          from_curve=from_curve)

        def relocate_round(self, curves: Sequence[kernels.PendingCurve],
                           targets: Sequence[int], geom,
                           library: NumpyKernelLibrary) -> bool:
            snapshots = kernels.pending_snapshots(curves)
            changed = False
            for to_idx in targets:
                if kernels.pending_relocate(
                        curves[to_idx], to_idx, snapshots, geom.wire_res,
                        geom.wire_cap, geom.candidates, geom.wire_widths,
                        library):
                    changed = True
            return changed

        def prune(self, curve: kernels.PendingCurve) -> None:
            curve.prune()

        def freeze(self, curve: kernels.PendingCurve) -> kernels.CurveSoA:
            return curve.freeze()

        def traceback(self, block: kernels.CurveSoA) -> List[Solution]:
            return block.sols

        def thaw(self, curve: kernels.PendingCurve) -> SolutionCurve:
            return curve.to_solution_curve()
