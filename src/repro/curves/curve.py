"""The :class:`SolutionCurve` container and its pruning rules."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.curves import kernels
from repro.curves.solution import Solution
from repro.geometry.point import Point
from repro.instrument import names as metric
from repro.instrument.recorder import active_recorder


@dataclass(frozen=True)
class CurveConfig:
    """Quantization and capacity parameters for solution curves.

    The paper's pseudo-polynomial bounds assume capacitances are mapped to
    polynomially-bounded integers; ``load_step`` and ``area_step`` implement
    that mapping (bucket widths in fF and um^2).  Within one
    ``(load bucket, area bucket)`` cell only the best-required-time solution
    is kept, which realizes the O(n·m·q) curve bound of Lemma 10.

    ``max_solutions`` is a hard safety cap applied after Pareto pruning;
    when it trips, solutions are thinned evenly along the area axis while
    the three extreme points (best required time, min load, min area) are
    always retained, so both objective variants keep their optima.

    ``backend`` selects the curve-kernel implementation: ``"python"``
    (default, dependency-free) or ``"numpy"`` (vectorized structure-of-
    arrays kernels, bit-identical results; see
    :mod:`repro.curves.kernels`).  Requesting ``"numpy"`` without NumPy
    installed degrades gracefully to ``"python"``.
    """

    load_step: float = 1.0
    area_step: float = 30.0
    max_solutions: int = 64
    backend: str = "python"

    def __post_init__(self) -> None:
        if self.load_step <= 0 or self.area_step <= 0:
            raise ValueError("quantization steps must be positive")
        if self.max_solutions < 3:
            raise ValueError("max_solutions must be >= 3")
        if self.backend not in kernels.BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {kernels.BACKENDS}")

    def resolved_backend(self) -> str:
        """The backend that will actually run (after NumPy availability)."""
        return kernels.resolve_backend(self.backend)

    def bucket(self, solution: Solution) -> Tuple[int, int]:
        """Return the (load, area) quantization bucket of ``solution``."""
        return (round(solution.load / self.load_step),
                round(solution.area / self.area_step))


class SolutionCurve:
    """A set of mutually non-inferior solutions sharing one root location.

    Insertion keeps the bucket invariant eagerly (cheap); full 3-D Pareto
    pruning and the capacity cap are applied by :meth:`prune`, which the DP
    calls once per table cell (lines 19–20 of BUBBLE_CONSTRUCT).

    The ``accept_key``/``add_keyed`` pair is the hot-path API: the DP
    computes candidate attribute triples arithmetically, asks
    :meth:`accept_key` whether such a solution would survive the bucket
    check, and only constructs the :class:`Solution` (and its traceback
    record) when the answer is a key.
    """

    __slots__ = ("root", "config", "_by_bucket", "_pruned",
                 "_inv_load", "_inv_area", "_numpy")

    def __init__(self, root: Point, config: Optional[CurveConfig] = None):
        self.root = root
        self.config = config or CurveConfig()
        self._by_bucket: Dict[Tuple[int, int], Solution] = {}
        self._pruned = True
        self._inv_load = 1.0 / self.config.load_step
        self._inv_area = 1.0 / self.config.area_step
        self._numpy = self.config.resolved_backend() == "numpy"

    def __len__(self) -> int:
        return len(self._by_bucket)

    def __iter__(self) -> Iterator[Solution]:
        return iter(self._by_bucket.values())

    def __bool__(self) -> bool:
        return bool(self._by_bucket)

    @property
    def solutions(self) -> List[Solution]:
        """The current solutions, sorted by ascending load."""
        return sorted(self._by_bucket.values(), key=Solution.key)

    # ------------------------------------------------------------------
    # Hot-path API
    # ------------------------------------------------------------------

    def accept_key(self, load: float, required_time: float,
                   area: float) -> Optional[Tuple[int, int]]:
        """Return the bucket key when a solution with these attributes
        would be kept, else None (bucket incumbent is at least as good)."""
        key = (round(load * self._inv_load), round(area * self._inv_area))
        incumbent = self._by_bucket.get(key)
        if incumbent is None or incumbent.required_time < required_time:
            return key
        return None

    def add_keyed(self, key: Tuple[int, int], solution: Solution) -> None:
        """Store ``solution`` under a key obtained from :meth:`accept_key`."""
        self._by_bucket[key] = solution
        self._pruned = False

    # ------------------------------------------------------------------
    # Convenience API
    # ------------------------------------------------------------------

    def would_accept(self, load: float, required_time: float,
                     area: float) -> bool:
        """Boolean form of :meth:`accept_key`."""
        return self.accept_key(load, required_time, area) is not None

    def add(self, solution: Solution) -> bool:
        """Insert ``solution``; return True when it was kept.

        Within its quantization bucket the solution must beat the incumbent
        required time to be kept (ties keep the incumbent, matching "only
        non-inferior solutions are stored").
        """
        if solution.root != self.root:
            raise ValueError(
                f"solution rooted at {solution.root} added to curve at {self.root}")
        key = self.accept_key(solution.load, solution.required_time,
                              solution.area)
        if key is None:
            return False
        self.add_keyed(key, solution)
        return True

    def extend(self, solutions) -> int:
        """Insert many solutions; return how many were stored.

        On the numpy backend a :class:`~repro.curves.kernels.CurveSoA`
        input is inserted as one vectorized batch (same final curve
        state; the returned count then reflects per-bucket winners
        rather than every transiently accepted solution).
        """
        if (self._numpy and isinstance(solutions, kernels.CurveSoA)
                and len(solutions) >= kernels.EXTEND_MIN_ITEMS):
            return kernels.batch_insert(
                self, solutions.loads, solutions.reqs, solutions.areas,
                solutions.resolve_row)
        return sum(1 for s in solutions if self.add(s))

    def prune(self) -> None:
        """Remove 3-D dominated solutions and enforce the capacity cap."""
        if self._pruned:
            return
        rec = active_recorder()
        if rec.enabled:
            with rec.span(metric.SPAN_KERNEL_PRUNE):
                self._prune_impl(rec)
        else:
            self._prune_impl(rec)

    def _prune_impl(self, rec) -> None:
        before = len(self._by_bucket)
        survivors = None
        if self._numpy:
            survivors = kernels.pareto_prune_items(
                list(self._by_bucket.items()))
        if survivors is None:
            survivors = _pareto_prune(self._by_bucket)
        if len(survivors) > self.config.max_solutions:
            survivors = _thin(survivors, self.config.max_solutions)
        self._by_bucket = dict(survivors)
        self._pruned = True
        if rec.enabled:
            kept = len(self._by_bucket)
            rec.incr(metric.CURVE_PRUNE_CALLS)
            rec.incr(metric.CURVE_PRUNE_REMOVED, before - kept)
            rec.record(metric.CURVE_PRUNE_SURVIVOR_RATIO,
                       kept / before if before else 1.0)

    def best_required_time(self) -> Optional[Solution]:
        """Return the solution with the highest required time, if any."""
        if not self._by_bucket:
            return None
        return max(self._by_bucket.values(),
                   key=lambda s: (s.required_time, -s.area, -s.load))

    def is_non_inferior_set(self) -> bool:
        """True when no stored solution dominates another (test hook)."""
        sols = list(self._by_bucket.values())
        for i, a in enumerate(sols):
            for j, b in enumerate(sols):
                if i != j and a.dominates(b):
                    return False
        return True


def _pareto_prune(by_bucket: Dict[Tuple[int, int], Solution]
                  ) -> List[Tuple[Tuple[int, int], Solution]]:
    """Drop bucket entries whose solution is 3-D dominated by another.

    Sweep in ascending (load, area) order: every already-kept entry has
    load no larger than the current one, so the current entry is dominated
    iff some kept entry with ``area <= current.area`` has
    ``required_time >= current.required_time``.  That query is answered by
    a *staircase*: kept (area, best required time) pairs with areas strictly
    increasing and prefix-maximal required times.  An entry processed
    earlier can never be dominated by a later one (the later has larger
    load, or equal load and larger area), so a single pass suffices —
    O(s log s) instead of the pairwise O(s^2).
    """
    items = sorted(by_bucket.items(),
                   key=lambda kv: (kv[1].load, kv[1].area,
                                   -kv[1].required_time))
    kept: List[Tuple[Tuple[int, int], Solution]] = []
    stair_areas: List[float] = []    # ascending
    stair_reqs: List[float] = []     # prefix-max of required times
    for key, sol in items:
        idx = bisect_right(stair_areas, sol.area)
        if idx > 0 and stair_reqs[idx - 1] >= sol.required_time:
            continue  # dominated
        kept.append((key, sol))
        # Insert into the staircase, preserving both invariants; the
        # insertion point is the same index the dominance query used.
        pos = idx
        stair_areas.insert(pos, sol.area)
        best_before = stair_reqs[pos - 1] if pos > 0 else float("-inf")
        stair_reqs.insert(pos, max(best_before, sol.required_time))
        for later in range(pos + 1, len(stair_reqs)):
            if stair_reqs[later] >= stair_reqs[later - 1]:
                break
            stair_reqs[later] = stair_reqs[later - 1]
    return kept


def _thin(items: List[Tuple[Tuple[int, int], Solution]], cap: int
          ) -> List[Tuple[Tuple[int, int], Solution]]:
    """Reduce ``items`` to ``cap`` entries, preserving the front's shape.

    The input is already a 3-D Pareto front; the cap is enforced by
    index-even sampling along the load-sorted front, which keeps points in
    every load regime (what parent joins at different distances care
    about) rather than clustering around one region.  The three extreme
    points — best required time, minimum load, minimum area — are always
    retained so both objective variants keep their optima.
    """
    indices = range(len(items))
    by_req = max(indices, key=lambda i: items[i][1].required_time)
    by_load = min(indices, key=lambda i: items[i][1].load)
    by_area = min(indices, key=lambda i: items[i][1].area)
    # Positional dedup (insertion-ordered, like the extremes above) —
    # not id()-keyed, so nothing here depends on allocation addresses.
    forced = {i: items[i] for i in dict.fromkeys((by_req, by_load, by_area))}
    rest = [kv for i, kv in enumerate(items) if i not in forced]
    slots = cap - len(forced)
    rest.sort(key=lambda kv: (kv[1].load, kv[1].required_time))
    if slots <= 0:
        picked = []
    elif len(rest) <= slots:
        picked = rest
    else:
        stride = len(rest) / slots
        picked = [rest[int(i * stride)] for i in range(slots)]
    return list(forced.values()) + picked
