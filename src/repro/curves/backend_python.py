"""Pure-python curve kernel: scalar loops over :class:`SolutionCurve`.

The dependency-free reference backend.  Live curves are
:class:`~repro.curves.curve.SolutionCurve` (bucket maps of materialized
:class:`~repro.curves.solution.Solution` objects), frozen blocks are
plain solution lists, and every operation is the direct scalar loop —
candidate attribute triples are computed arithmetically and a Solution
is constructed only after :meth:`SolutionCurve.accept_key` admits the
triple.  The Li & Shi shadow table (see
:class:`repro.curves.contract.KernelLibrary`) additionally skips buffer
offers an earlier same-bucket offer already proved rejectable, before
any key is built.

These loops were the bodies of ``PTreeContext.join_into`` /
``_buffer_all`` / ``_relocate`` before the kernel boundary existed;
they moved here verbatim (plus the shadow skips) so the engine layer is
backend-blind.  The numpy backend must match this one bit-for-bit —
the golden suites and ``bench check_suite`` hold both to it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.curves.contract import (
    BufferParams,
    CurveKernel,
    KernelLibrary,
    register_kernel,
)
from repro.curves.curve import CurveConfig, SolutionCurve
from repro.curves.solution import Buffered, Extend, Join, Solution
from repro.geometry.point import Point


@register_kernel
class PythonKernel(CurveKernel):
    """Scalar reference implementation of the kernel contract."""

    name = "python"

    def make_library(self, buffer_params: Sequence[BufferParams],
                     curve_config: CurveConfig) -> KernelLibrary:
        return KernelLibrary(buffer_params, curve_config)

    def new_curve(self, root: Point, config: CurveConfig) -> SolutionCurve:
        return SolutionCurve(root, config)

    def merge(self, curve: SolutionCurve, block) -> int:
        return curve.extend(block)

    def join(self, curve: SolutionCurve, lefts, rights) -> None:
        accept_key = curve.accept_key
        add_keyed = curve.add_keyed
        root = curve.root
        for a in lefts:
            a_load = a.load
            a_req = a.required_time
            a_area = a.area
            for b in rights:
                load = a_load + b.load
                req = a_req if a_req < b.required_time else b.required_time
                area = a_area + b.area
                key = accept_key(load, req, area)
                if key is not None:
                    add_keyed(key, Solution(root, load, req, area,
                                            Join(a, b)))

    def add_buffer(self, curve: SolutionCurve, library: KernelLibrary,
                   sources=None, from_curve: bool = False) -> int:
        if sources is None:
            sources = list(curve)
        buffer_params = library.params
        if not buffer_params:
            return 0
        cap_keys = library.cap_keys
        add_keyed = curve.add_keyed
        root = curve.root
        inv_area = curve._inv_area
        if not library.has_shadows:
            # No two buffers share a load bucket — the shadow skip can
            # never fire, so run the lean loop without its bookkeeping.
            pairs = list(zip(cap_keys, buffer_params))
            for s in sources:
                load = s.load
                req = s.required_time
                area = s.area
                for ck, (buffer, input_cap, buf_area, d0, slope) in pairs:
                    new_req = req - d0 - slope * load
                    new_area = area + buf_area
                    key = (ck, round(new_area * inv_area))
                    incumbent = curve._by_bucket.get(key)
                    if incumbent is None \
                            or incumbent.required_time < new_req:
                        add_keyed(key, Solution(
                            root, input_cap, new_req, new_area,
                            Buffered(s, buffer)))
            return 0
        shadows = library.shadows
        m = len(buffer_params)
        reqs_j = [0.0] * m
        akeys_j = [0] * m
        skipped = 0
        for s in sources:
            load = s.load
            req = s.required_time
            area = s.area
            for bj, (buffer, input_cap, buf_area, d0,
                     slope) in enumerate(buffer_params):
                new_req = req - d0 - slope * load
                new_area = area + buf_area
                akey = round(new_area * inv_area)
                reqs_j[bj] = new_req
                akeys_j[bj] = akey
                hit = False
                for pi in shadows[bj]:
                    if akeys_j[pi] == akey and reqs_j[pi] >= new_req:
                        hit = True
                        break
                if hit:
                    # An earlier offer landed the same bucket with a
                    # required time >= this one, so the bucket incumbent
                    # already does — the map would reject this offer.
                    skipped += 1
                    continue
                key = (cap_keys[bj], akey)
                incumbent = curve._by_bucket.get(key)
                if incumbent is None or incumbent.required_time < new_req:
                    add_keyed(key, Solution(root, input_cap, new_req,
                                            new_area, Buffered(s, buffer)))
        return skipped

    def relocate_round(self, curves: Sequence[SolutionCurve],
                       targets: Sequence[int], geom,
                       library: KernelLibrary) -> bool:
        buffer_params = library.params
        wire_res = geom.wire_res
        wire_cap = geom.wire_cap
        candidates = geom.candidates
        wire_widths = geom.wire_widths
        snapshots = [list(curve) for curve in curves]
        changed = False
        for to_idx in targets:
            curve = curves[to_idx]
            root = curve.root
            accept_key = curve.accept_key
            add_keyed = curve.add_keyed
            for frm_idx, snapshot in enumerate(snapshots):
                if frm_idx == to_idx or not snapshot:
                    continue
                base_res = wire_res[frm_idx][to_idx]
                base_cap = wire_cap[frm_idx][to_idx]
                length = candidates[frm_idx].manhattan_to(root)
                for wire_width in wire_widths:
                    res = base_res / wire_width
                    cap = base_cap * wire_width
                    half_self = 0.5 * cap
                    for s in snapshot:
                        load = s.load + cap
                        req = s.required_time - res * (half_self + s.load)
                        area = s.area
                        moved: Optional[Solution] = None
                        key = accept_key(load, req, area)
                        if key is not None:
                            moved = Solution(
                                root, load, req, area,
                                Extend(s, length, wire_width))
                            add_keyed(key, moved)
                            changed = True
                        for (buffer, input_cap, buf_area, d0,
                             slope) in buffer_params:
                            b_req = req - d0 - slope * load
                            b_area = area + buf_area
                            b_key = accept_key(input_cap, b_req, b_area)
                            if b_key is not None:
                                if moved is None:
                                    moved = Solution(
                                        root, load, req, area,
                                        Extend(s, length, wire_width))
                                add_keyed(b_key, Solution(
                                    root, input_cap, b_req, b_area,
                                    Buffered(moved, buffer)))
                                changed = True
        return changed

    def prune(self, curve: SolutionCurve) -> None:
        curve.prune()

    def freeze(self, curve: SolutionCurve) -> List[Solution]:
        return curve.solutions

    def traceback(self, block) -> List[Solution]:
        return list(block)

    def thaw(self, curve: SolutionCurve) -> SolutionCurve:
        return curve
