"""Curve-level operations: wire extension, joining, buffering.

These three combinators are the only ways solutions grow during the dynamic
programs; each one updates the ``(load, required_time, area)`` triple per
the delay model and records the matching traceback detail:

* :func:`extend_curve` — run a wire from the curve's root to a new root
  (the ``d(p, p') + S(e, p', i, j)`` term of the *PTREE recursion).
* :func:`join_curves` — merge two sub-structures at a shared root (the
  ``S(e', p, i, u) + S(e'', p, u+1, j)`` term).
* :func:`buffered_options` — optionally drive a structure with each library
  buffer (the ``*`` of *P_Tree: buffers on Steiner points).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.curves.solution import Buffered, Extend, Join, Solution
from repro.geometry.point import Point
from repro.instrument import names as metric
from repro.instrument.recorder import active_recorder
from repro.tech.buffer import Buffer
from repro.tech.technology import Technology


def extend_solution(solution: Solution, new_root: Point,
                    tech: Technology, width: float = 1.0) -> Solution:
    """Return ``solution`` re-rooted at ``new_root`` via a connecting wire.

    The wire length is the Manhattan distance between the roots; its
    capacitance adds to the load and its Elmore delay (seen by the far end)
    subtracts from the required time.  Extending to the same point is the
    identity.

    ``width`` applies first-order wire sizing: resistance scales by
    ``1/width`` and capacitance by ``width``.
    """
    if width <= 0:
        raise ValueError("wire width must be positive")
    active_recorder().incr(metric.OPS_EXTEND)
    length = solution.root.manhattan_to(new_root)
    if length == 0:
        return solution
    cap = tech.wire_cap(length) * width
    res = tech.wire.resistance(length) / width
    delay = res * (0.5 * cap + solution.load)
    return Solution(
        root=new_root,
        load=solution.load + cap,
        required_time=solution.required_time - delay,
        area=solution.area,
        detail=Extend(child=solution, length=length, width=width),
    )


def extend_curve(solutions: Iterable[Solution], new_root: Point,
                 tech: Technology) -> Iterator[Solution]:
    """Extend every solution to ``new_root`` (lazy)."""
    for solution in solutions:
        yield extend_solution(solution, new_root, tech)


def join_solutions(left: Solution, right: Solution) -> Solution:
    """Merge two structures rooted at the same point.

    Loads and areas add; the required time is the minimum of the two
    branches (the root must satisfy both subtrees).
    """
    if left.root != right.root:
        raise ValueError(
            f"cannot join solutions rooted at {left.root} and {right.root}")
    active_recorder().incr(metric.OPS_JOIN)
    return Solution(
        root=left.root,
        load=left.load + right.load,
        required_time=min(left.required_time, right.required_time),
        area=left.area + right.area,
        detail=Join(left=left, right=right),
    )


def join_curves(lefts: Iterable[Solution], rights: Iterable[Solution]
                ) -> Iterator[Solution]:
    """Cross-product join of two solution sets at a shared root (lazy)."""
    rights_list = list(rights)
    for left in lefts:
        for right in rights_list:
            yield join_solutions(left, right)


def buffer_solution(solution: Solution, buffer: Buffer,
                    tech: Technology) -> Solution:
    """Place ``buffer`` at the root of ``solution``.

    The structure's load collapses to the buffer's input capacitance — this
    decoupling is exactly why buffer insertion helps — at the cost of the
    buffer's delay and area.
    """
    active_recorder().incr(metric.OPS_BUFFER)
    return Solution(
        root=solution.root,
        load=buffer.input_cap,
        required_time=solution.required_time - tech.buffer_delay(buffer, solution.load),
        area=solution.area + buffer.area,
        detail=Buffered(child=solution, buffer=buffer),
    )


def buffered_options(solution: Solution, tech: Technology,
                     include_unbuffered: bool = True) -> List[Solution]:
    """Return ``solution`` driven by each library buffer (plus itself).

    A buffer only pays off when it reduces load or improves required time,
    but the decision is deferred to curve pruning: all options are emitted
    and Definition 6 sorts them out.
    """
    options = [solution] if include_unbuffered else []
    options.extend(buffer_solution(solution, b, tech) for b in tech.buffers)
    return options
