"""Points in the rectilinear plane.

The routing model is purely rectilinear: every connection between two points
is an L-shaped (or straight) wire whose length equals the Manhattan distance
between its endpoints.  The Elmore delay of such a wire depends only on its
total length, so the library never needs to commit to a particular L-shape
embedding until export time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """An immutable point ``(x, y)`` in microns.

    Points are hashable and totally ordered (lexicographically), which lets
    them serve directly as dictionary keys in the dynamic-programming tables
    indexed by candidate buffer locations.
    """

    x: float
    y: float

    def manhattan_to(self, other: "Point") -> float:
        """Return the Manhattan (L1) distance to ``other`` in microns."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return the coordinates as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x:g}, {self.y:g})"


def manhattan(a: Point, b: Point) -> float:
    """Module-level convenience alias for :meth:`Point.manhattan_to`."""
    return a.manhattan_to(b)


def centroid(points: Iterable[Point]) -> Point:
    """Return the arithmetic mean of ``points``.

    Raises :class:`ValueError` when ``points`` is empty — an empty sink
    subset has no center of mass and asking for one is a caller bug.
    """
    pts = list(points)
    if not pts:
        raise ValueError("centroid of an empty point set is undefined")
    sx = sum(p.x for p in pts)
    sy = sum(p.y for p in pts)
    return Point(sx / len(pts), sy / len(pts))


def median_point(points: Iterable[Point]) -> Point:
    """Return the coordinate-wise median of ``points``.

    The coordinate-wise median minimizes total Manhattan distance to the
    given points, which makes it the natural "center" for rectilinear
    routing; used by the reduced-Hanan candidate generator.
    """
    pts = list(points)
    if not pts:
        raise ValueError("median of an empty point set is undefined")
    xs = sorted(p.x for p in pts)
    ys = sorted(p.y for p in pts)
    mid = len(pts) // 2
    if len(pts) % 2 == 1:
        return Point(xs[mid], ys[mid])
    return Point(0.5 * (xs[mid - 1] + xs[mid]), 0.5 * (ys[mid - 1] + ys[mid]))
