"""Rectilinear (Manhattan) geometry primitives.

This subpackage provides the geometric substrate of the library: points in
the Manhattan metric, bounding boxes, the Hanan grid [Ha66], and the buffer
candidate-location generators discussed in section III.1 of the paper (full
Hanan points, reduced Hanan points, centers of mass of sink subsets).
"""

from repro.geometry.point import Point, manhattan
from repro.geometry.bbox import BoundingBox
from repro.geometry.hanan import hanan_points, hanan_grid_lines
from repro.geometry.candidates import (
    CandidateStrategy,
    full_hanan_candidates,
    reduced_hanan_candidates,
    center_of_mass_candidates,
    generate_candidates,
)

__all__ = [
    "Point",
    "manhattan",
    "BoundingBox",
    "hanan_points",
    "hanan_grid_lines",
    "CandidateStrategy",
    "full_hanan_candidates",
    "reduced_hanan_candidates",
    "center_of_mass_candidates",
    "generate_candidates",
]
