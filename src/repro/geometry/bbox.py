"""Axis-aligned bounding boxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geometry.point import Point


@dataclass(frozen=True)
class BoundingBox:
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"degenerate bounding box: ({self.xmin}, {self.ymin}) to "
                f"({self.xmax}, {self.ymax})"
            )

    @classmethod
    def of_points(cls, points: Iterable[Point]) -> "BoundingBox":
        """Return the smallest box containing ``points`` (non-empty)."""
        pts = list(points)
        if not pts:
            raise ValueError("bounding box of an empty point set is undefined")
        return cls(
            xmin=min(p.x for p in pts),
            ymin=min(p.y for p in pts),
            xmax=max(p.x for p in pts),
            ymax=max(p.y for p in pts),
        )

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def half_perimeter(self) -> float:
        """Half-perimeter wire length (HPWL), the classic net-length lower bound."""
        return self.width + self.height

    @property
    def center(self) -> Point:
        return Point(0.5 * (self.xmin + self.xmax), 0.5 * (self.ymin + self.ymax))

    def contains(self, p: Point) -> bool:
        """Return True when ``p`` lies inside or on the border of the box."""
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` on every side."""
        return BoundingBox(
            self.xmin - margin, self.ymin - margin,
            self.xmax + margin, self.ymax + margin,
        )
