"""The Hanan grid [Ha66].

For a net with terminals ``T``, the Hanan grid is formed by the horizontal
and vertical lines through every terminal; Hanan proved that some optimal
rectilinear Steiner tree uses only the grid's intersection points.  The
P-Tree family of algorithms ([LCLH96] and the paper's *PTREE) embeds
routing trees into this grid, and the full set of Hanan points is one of the
candidate-location choices discussed in section III.1.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.geometry.point import Point


def hanan_grid_lines(terminals: Iterable[Point]) -> Tuple[List[float], List[float]]:
    """Return the sorted, de-duplicated ``(xs, ys)`` grid lines of a net."""
    pts = list(terminals)
    if not pts:
        raise ValueError("Hanan grid of an empty terminal set is undefined")
    xs = sorted({p.x for p in pts})
    ys = sorted({p.y for p in pts})
    return xs, ys


def hanan_points(terminals: Iterable[Point]) -> List[Point]:
    """Return all Hanan grid points of the given terminals.

    The result has ``len(xs) * len(ys)`` points (at most ``n**2`` for ``n``
    distinct terminals) in row-major order, which is deterministic — the DP
    tables iterate candidate locations in this order.
    """
    xs, ys = hanan_grid_lines(terminals)
    return [Point(x, y) for y in ys for x in xs]


def snap_to_grid(point: Point, xs: Sequence[float], ys: Sequence[float]) -> Point:
    """Return the Hanan point nearest to ``point`` in the Manhattan metric.

    Used by the reduced-Hanan candidate generator to legalize heuristic
    locations (e.g. centers of mass) onto the grid.
    """
    if not xs or not ys:
        raise ValueError("cannot snap to an empty grid")
    best_x = min(xs, key=lambda x: abs(x - point.x))
    best_y = min(ys, key=lambda y: abs(y - point.y))
    return Point(best_x, best_y)
