"""Delay models: Elmore wires and gate delay equations.

Two gate-delay models are provided:

* :class:`LinearGateDelay` — the classic ``d = intrinsic + R_drive * C_load``
  switch-level model used by van Ginneken [Gi90] and most buffered-routing
  dynamic programs.
* :class:`FourParameterGateDelay` — the paper evaluates gates with a
  4-parameter delay equation [LSP98]; the exact equation is not reproduced
  in the DAC text, so we implement the standard 4-term form
  ``d = k0 + k1*C_load + k2*S_in + k3*C_load*S_in`` with a *nominal* input
  slew.  Using a fixed nominal slew keeps the required-time recursion a
  function of downstream state only, which the dynamic-programming
  formulation (and its pruning correctness, Lemma 9) requires.

Both models are monotone non-decreasing in the load, which is what the
non-inferior-curve machinery relies on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro import units
from repro.tech.buffer import Buffer
from repro.tech.wire import WireParasitics


def elmore_wire_delay(wire: WireParasitics, length: float,
                      downstream_cap: float) -> float:
    """Elmore delay (ps) of a wire segment.

    The segment is modelled as a single lumped pi-stage: total resistance
    ``R = r*L`` sees half its own capacitance plus everything downstream,
    giving ``d = R * (C_wire/2 + C_down)`` — the standard distributed-RC
    Elmore approximation [El48].
    """
    if length < 0:
        raise ValueError("wire length must be non-negative")
    if downstream_cap < 0:
        raise ValueError("downstream capacitance must be non-negative")
    resistance = wire.resistance(length)
    self_cap = wire.capacitance(length)
    return resistance * (0.5 * self_cap + downstream_cap)


class GateDelayModel(abc.ABC):
    """Interface for computing the delay of a driving cell."""

    @abc.abstractmethod
    def buffer_delay(self, buffer: Buffer, load: float) -> float:
        """Delay (ps) through ``buffer`` driving ``load`` fF."""

    @abc.abstractmethod
    def driver_delay(self, drive_resistance: float, intrinsic: float,
                     load: float) -> float:
        """Delay (ps) through a net driver with the given parameters."""


@dataclass(frozen=True)
class LinearGateDelay(GateDelayModel):
    """``d = intrinsic + R_drive * C_load`` — the switch-level RC model."""

    def buffer_delay(self, buffer: Buffer, load: float) -> float:
        if load < 0:
            raise ValueError("load must be non-negative")
        return buffer.intrinsic_delay + buffer.drive_resistance * load

    def driver_delay(self, drive_resistance: float, intrinsic: float,
                     load: float) -> float:
        if load < 0:
            raise ValueError("load must be non-negative")
        return intrinsic + drive_resistance * load


@dataclass(frozen=True)
class FourParameterGateDelay(GateDelayModel):
    """4-parameter delay equation of [LSP98] with a nominal input slew.

    ``d = k0 + k1*C + k2*S + k3*C*S`` where ``C`` is the load and ``S`` the
    input slew.  Per cell, the coefficients are derived from the cell's
    physical parameters: ``k0 = intrinsic``, ``k1 = R_drive``, and the slew
    terms scale with the configured sensitivities.  A single nominal slew is
    used for every evaluation (see module docstring for why).
    """

    nominal_slew: float = units.DEFAULT_NOMINAL_SLEW
    slew_sensitivity: float = 0.12
    cross_sensitivity: float = 0.0008

    def __post_init__(self) -> None:
        if self.nominal_slew < 0:
            raise ValueError("nominal_slew must be non-negative")

    def buffer_delay(self, buffer: Buffer, load: float) -> float:
        if load < 0:
            raise ValueError("load must be non-negative")
        return (buffer.intrinsic_delay
                + buffer.drive_resistance * load
                + self.slew_sensitivity * self.nominal_slew
                + self.cross_sensitivity * self.nominal_slew * load)

    def driver_delay(self, drive_resistance: float, intrinsic: float,
                     load: float) -> float:
        if load < 0:
            raise ValueError("load must be non-negative")
        return (intrinsic
                + drive_resistance * load
                + self.slew_sensitivity * self.nominal_slew
                + self.cross_sensitivity * self.nominal_slew * load)
