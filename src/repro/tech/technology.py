"""The :class:`Technology` bundle: everything delay-related in one object."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro import units
from repro.tech.buffer import BufferLibrary
from repro.tech.delay import (
    FourParameterGateDelay,
    GateDelayModel,
    elmore_wire_delay,
)
from repro.tech.library import make_library
from repro.tech.wire import WireParasitics


@dataclass(frozen=True)
class Technology:
    """A process technology: wire parasitics, buffer library, delay models.

    Every algorithm in the library takes a :class:`Technology` rather than
    loose parameters, so an experiment can swap the library, the wire stack
    or the gate delay equation in one place.
    """

    wire: WireParasitics
    buffers: BufferLibrary
    gate_delay: GateDelayModel
    #: Output resistance (kOhm) and intrinsic delay (ps) of a net driver
    #: when the netlist does not specify one.
    driver_resistance: float = units.DEFAULT_DRIVER_RESISTANCE
    driver_intrinsic: float = units.DEFAULT_DRIVER_INTRINSIC

    def wire_delay(self, length: float, downstream_cap: float) -> float:
        """Elmore delay (ps) of a wire of ``length`` um; see tech.delay."""
        return elmore_wire_delay(self.wire, length, downstream_cap)

    def wire_cap(self, length: float) -> float:
        """Capacitance (fF) a wire of ``length`` um adds to its driver."""
        return self.wire.capacitance(length)

    def buffer_delay(self, buffer, load: float) -> float:
        """Delay (ps) through ``buffer`` driving ``load`` fF."""
        return self.gate_delay.buffer_delay(buffer, load)

    def driver_delay(self, load: float,
                     drive_resistance: Optional[float] = None,
                     intrinsic: Optional[float] = None) -> float:
        """Delay (ps) through the net driver for ``load`` fF."""
        resistance = self.driver_resistance if drive_resistance is None else drive_resistance
        base = self.driver_intrinsic if intrinsic is None else intrinsic
        return self.gate_delay.driver_delay(resistance, base, load)

    def with_buffers(self, buffers: BufferLibrary) -> "Technology":
        """Return a copy using a different buffer library."""
        return replace(self, buffers=buffers)


def default_technology(library_size: int = 34) -> Technology:
    """Return the default synthetic 0.35um technology used by experiments."""
    return Technology(
        wire=WireParasitics(),
        buffers=make_library(library_size),
        gate_delay=FourParameterGateDelay(),
    )
