"""Technology modelling: buffers, wires, and delay equations.

The paper's experiments use an industrial 0.35um standard-cell library with
34 buffers, a 4-parameter gate delay equation [LSP98] and the Elmore wire
delay [El48].  This subpackage implements all three from scratch, plus a
synthetic-library generator with realistic 0.35um magnitudes (the industrial
library itself is proprietary — see DESIGN.md substitution #3).
"""

from repro.tech.buffer import Buffer, BufferLibrary
from repro.tech.wire import WireParasitics
from repro.tech.delay import (
    GateDelayModel,
    LinearGateDelay,
    FourParameterGateDelay,
    elmore_wire_delay,
)
from repro.tech.library import make_library
from repro.tech.technology import Technology, default_technology

__all__ = [
    "Buffer",
    "BufferLibrary",
    "WireParasitics",
    "GateDelayModel",
    "LinearGateDelay",
    "FourParameterGateDelay",
    "elmore_wire_delay",
    "make_library",
    "Technology",
    "default_technology",
]
