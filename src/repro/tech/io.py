"""Buffer-library and technology I/O.

Industrial flows keep cell libraries in external files; this module
serializes :class:`BufferLibrary` and :class:`Technology` objects to a
plain JSON schema so users can drop in their own characterized buffers
instead of the synthetic library.

Schema::

    {
      "wire": {"resistance_per_um": ..., "capacitance_per_um": ...},
      "driver": {"resistance": ..., "intrinsic": ...},
      "gate_delay": {"model": "linear"} |
                    {"model": "four_parameter", "nominal_slew": ...,
                     "slew_sensitivity": ..., "cross_sensitivity": ...},
      "buffers": [
        {"name": "...", "input_cap": ..., "drive_resistance": ...,
         "intrinsic_delay": ..., "area": ...}, ...
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

from repro.tech.buffer import Buffer, BufferLibrary
from repro.tech.delay import FourParameterGateDelay, LinearGateDelay
from repro.tech.technology import Technology
from repro.tech.wire import WireParasitics


def library_to_dict(library: BufferLibrary) -> list:
    """Serialize a buffer library to plain data."""
    return [
        {
            "name": b.name,
            "input_cap": b.input_cap,
            "drive_resistance": b.drive_resistance,
            "intrinsic_delay": b.intrinsic_delay,
            "area": b.area,
        }
        for b in library
    ]


def library_from_dict(data: list) -> BufferLibrary:
    """Deserialize a buffer library; raises ValueError on bad entries."""
    if not isinstance(data, list):
        raise ValueError("buffer library data must be a list")
    return BufferLibrary(Buffer(**entry) for entry in data)


def technology_to_dict(tech: Technology) -> Dict[str, Any]:
    """Serialize a complete technology bundle."""
    gate: Dict[str, Any]
    if isinstance(tech.gate_delay, FourParameterGateDelay):
        gate = {
            "model": "four_parameter",
            "nominal_slew": tech.gate_delay.nominal_slew,
            "slew_sensitivity": tech.gate_delay.slew_sensitivity,
            "cross_sensitivity": tech.gate_delay.cross_sensitivity,
        }
    elif isinstance(tech.gate_delay, LinearGateDelay):
        gate = {"model": "linear"}
    else:
        raise ValueError(
            f"cannot serialize gate delay model "
            f"{type(tech.gate_delay).__name__}")
    return {
        "wire": {
            "resistance_per_um": tech.wire.resistance_per_um,
            "capacitance_per_um": tech.wire.capacitance_per_um,
        },
        "driver": {
            "resistance": tech.driver_resistance,
            "intrinsic": tech.driver_intrinsic,
        },
        "gate_delay": gate,
        "buffers": library_to_dict(tech.buffers),
    }


def technology_from_dict(data: Dict[str, Any]) -> Technology:
    """Deserialize a technology bundle (inverse of technology_to_dict)."""
    gate_data = data.get("gate_delay", {"model": "linear"})
    model = gate_data.get("model")
    if model == "linear":
        gate_delay = LinearGateDelay()
    elif model == "four_parameter":
        gate_delay = FourParameterGateDelay(
            nominal_slew=gate_data["nominal_slew"],
            slew_sensitivity=gate_data["slew_sensitivity"],
            cross_sensitivity=gate_data["cross_sensitivity"],
        )
    else:
        raise ValueError(f"unknown gate delay model: {model!r}")
    return Technology(
        wire=WireParasitics(**data["wire"]),
        buffers=library_from_dict(data["buffers"]),
        gate_delay=gate_delay,
        driver_resistance=data["driver"]["resistance"],
        driver_intrinsic=data["driver"]["intrinsic"],
    )


def save_technology(tech: Technology, path: str) -> None:
    """Write ``tech`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(technology_to_dict(tech), handle, indent=2)


def load_technology(path: str) -> Technology:
    """Read a technology bundle from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return technology_from_dict(json.load(handle))
