"""Buffer cells and buffer libraries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence


@dataclass(frozen=True)
class Buffer:
    """A non-inverting buffer cell.

    Attributes
    ----------
    name:
        Unique cell name, e.g. ``"BUF_X4"``.
    input_cap:
        Capacitance presented at the buffer input (fF).  This is the load a
        buffered sub-solution exposes to its driver — the "load" axis of the
        three-dimensional solution curves.
    drive_resistance:
        Equivalent output resistance (kOhm) used by both the linear and the
        four-parameter delay models.
    intrinsic_delay:
        Load-independent delay component (ps).
    area:
        Cell area (um^2); summed into the "total buffer area" axis of the
        solution curves.
    """

    name: str
    input_cap: float
    drive_resistance: float
    intrinsic_delay: float
    area: float

    def __post_init__(self) -> None:
        if self.input_cap <= 0:
            raise ValueError(f"{self.name}: input_cap must be positive")
        if self.drive_resistance <= 0:
            raise ValueError(f"{self.name}: drive_resistance must be positive")
        if self.intrinsic_delay < 0:
            raise ValueError(f"{self.name}: intrinsic_delay must be >= 0")
        if self.area <= 0:
            raise ValueError(f"{self.name}: area must be positive")


class BufferLibrary:
    """An ordered, indexable collection of :class:`Buffer` cells.

    The library corresponds to the paper's ``B = {b_1, ..., b_m}``.  Cells
    are kept sorted by ascending area so iteration order is deterministic
    and so heuristics that want "the smallest buffer that works" can scan
    in order.
    """

    def __init__(self, buffers: Iterable[Buffer]):
        cells = sorted(buffers, key=lambda b: (b.area, b.name))
        if not cells:
            raise ValueError("a buffer library must contain at least one cell")
        names = [b.name for b in cells]
        if len(set(names)) != len(names):
            raise ValueError("buffer names must be unique")
        self._cells: List[Buffer] = cells
        self._by_name = {b.name: b for b in cells}

    def __iter__(self) -> Iterator[Buffer]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __getitem__(self, index: int) -> Buffer:
        return self._cells[index]

    def by_name(self, name: str) -> Buffer:
        """Return the cell called ``name`` (KeyError when absent)."""
        return self._by_name[name]

    @property
    def cells(self) -> Sequence[Buffer]:
        """The cells in ascending-area order (read-only view)."""
        return tuple(self._cells)

    @property
    def smallest(self) -> Buffer:
        return self._cells[0]

    @property
    def largest(self) -> Buffer:
        return self._cells[-1]

    def subset(self, count: int) -> "BufferLibrary":
        """Return a library of ``count`` cells spread evenly across sizes.

        The pseudo-polynomial DP cost grows linearly in the library size
        ``m``; experiments that do not need all 34 drive strengths thin the
        library with this method while keeping the full size range (the
        smallest and largest cells are always retained).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if count >= len(self._cells):
            return BufferLibrary(self._cells)
        if count == 1:
            return BufferLibrary([self._cells[len(self._cells) // 2]])
        stride = (len(self._cells) - 1) / (count - 1)
        picked = [self._cells[round(i * stride)] for i in range(count)]
        return BufferLibrary(dict.fromkeys(picked))
