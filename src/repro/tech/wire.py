"""Wire parasitics for the distributed-RC Elmore model."""

from __future__ import annotations

from dataclasses import dataclass

from repro import units


@dataclass(frozen=True)
class WireParasitics:
    """Per-unit-length wire parasitics.

    Attributes
    ----------
    resistance_per_um:
        Series resistance per micron (kOhm/um).
    capacitance_per_um:
        Capacitance to ground per micron (fF/um).
    """

    resistance_per_um: float = units.DEFAULT_WIRE_RESISTANCE
    capacitance_per_um: float = units.DEFAULT_WIRE_CAPACITANCE

    def __post_init__(self) -> None:
        if self.resistance_per_um < 0 or self.capacitance_per_um < 0:
            raise ValueError("wire parasitics must be non-negative")

    def resistance(self, length: float) -> float:
        """Total series resistance (kOhm) of a wire of ``length`` microns."""
        return self.resistance_per_um * length

    def capacitance(self, length: float) -> float:
        """Total capacitance (fF) of a wire of ``length`` microns."""
        return self.capacitance_per_um * length
