"""Synthetic buffer-library generation.

The paper uses an industrial 0.35um CMOS library containing 34 buffers.
That library is proprietary, so :func:`make_library` synthesizes one with
the same cardinality and realistic magnitudes: drive strengths spread
geometrically from a minimum-size to a ~30x buffer, with

* input capacitance growing linearly with drive strength,
* drive resistance shrinking inversely with drive strength,
* intrinsic delay growing slowly (larger cells have more internal stages),
* area growing linearly with drive strength.

These scaling laws are the standard first-order CMOS sizing relations, so
the synthetic library exercises exactly the same area/delay trade-offs the
dynamic program explores with a real library.
"""

from __future__ import annotations

from repro.tech.buffer import Buffer, BufferLibrary

#: Parameters of the smallest (1x) synthetic buffer.
_BASE_INPUT_CAP = 2.4        # fF
_BASE_DRIVE_RESISTANCE = 8.0  # kOhm
_BASE_INTRINSIC = 36.0        # ps
_BASE_AREA = 28.0             # um^2
#: Drive-strength ratio between the largest and smallest cell.
_MAX_STRENGTH = 30.0


def make_library(size: int = 34) -> BufferLibrary:
    """Return a synthetic buffer library with ``size`` cells.

    Cells are named ``BUF_X<strength>`` with strengths spread geometrically
    over ``[1, 30]``; ``size=34`` reproduces the paper's library cardinality.
    """
    if size < 1:
        raise ValueError("library size must be >= 1")
    cells = []
    for i in range(size):
        if size == 1:
            strength = 1.0
        else:
            strength = _MAX_STRENGTH ** (i / (size - 1))
        cells.append(Buffer(
            name=f"BUF_X{strength:.2f}",
            input_cap=_BASE_INPUT_CAP * strength,
            drive_resistance=_BASE_DRIVE_RESISTANCE / strength,
            # Larger buffers need internal pre-drivers: intrinsic delay grows
            # roughly with the logarithm of the strength.
            intrinsic_delay=_BASE_INTRINSIC * (1.0 + 0.35 * _log2(strength)),
            area=_BASE_AREA * strength,
        ))
    return BufferLibrary(cells)


def _log2(x: float) -> float:
    import math

    return math.log2(x) if x > 0 else 0.0
