"""Cooperative compute budgets for the MERLIN engine.

Buffered-routing DPs can blow up on adversarial instances (the
solution-curve growth the paper's quantization exists to tame), so a
production service needs *bounded* compute per job.  A
:class:`ComputeBudget` is threaded through ``MerlinConfig.budget`` and
charged cooperatively at the engine's natural unit-of-work boundaries —
one charge per MERLIN outer iteration, per Γ parent cell, per computed
*PTREE range.  When the budget runs out the engine raises
:class:`~repro.resilience.errors.BudgetExhaustedError` and the
degradation ladder (:mod:`repro.resilience.degrade`) takes over.

Two independent limits:

* ``max_ops`` — a *deterministic* cap on charged units.  Exhaustion is a
  pure function of (net, order, config), so two runs with the same ops
  budget degrade at exactly the same point on every machine — this is
  the limit chaos tests pin.
* ``deadline_s`` — a wall-clock limit, inherently machine-dependent;
  use for real serving, not for reproducibility assertions.

The clock is read here (and only here) — the engine packages themselves
stay wall-clock-free, which is what the ``DET-TIME`` static rule
enforces.

Budgets do not cross process boundaries as live objects: the service
ships the plain ``(max_ops, deadline_s)`` numbers and each worker
constructs its own budget at job start.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.resilience.errors import BudgetExhaustedError, MerlinInputError


class ComputeBudget:
    """A mutable op-count/deadline budget; see module docstring.

    ``charge()`` is designed to be cheap enough for per-DP-cell call
    sites: one integer add, one compare, and (only when a deadline is
    set) a monotonic clock read.
    """

    __slots__ = ("max_ops", "deadline_s", "ops", "started_at")

    def __init__(self, max_ops: Optional[int] = None,
                 deadline_s: Optional[float] = None,
                 started_at: Optional[float] = None) -> None:
        if max_ops is not None and max_ops < 0:
            raise MerlinInputError("max_ops must be >= 0")
        if deadline_s is not None and deadline_s < 0:
            raise MerlinInputError("deadline_s must be >= 0")
        self.max_ops = max_ops
        self.deadline_s = deadline_s
        self.ops = 0
        self.started_at = started_at

    @property
    def active(self) -> bool:
        """True when at least one limit is set."""
        return self.max_ops is not None or self.deadline_s is not None

    def start(self) -> "ComputeBudget":
        """Anchor the deadline clock (idempotent; charge() calls it)."""
        if self.started_at is None and self.deadline_s is not None:
            self.started_at = time.perf_counter()
        return self

    def elapsed_s(self) -> float:
        if self.started_at is None:
            return 0.0
        return time.perf_counter() - self.started_at

    def charge(self, n: int = 1, what: str = "op") -> None:
        """Consume ``n`` units; raise BudgetExhaustedError when out."""
        self.ops += n
        if self.max_ops is not None and self.ops > self.max_ops:
            raise BudgetExhaustedError(
                f"compute budget exhausted: {self.ops} ops charged "
                f"(cap {self.max_ops}, last unit {what!r})",
                stage="budget")
        if self.deadline_s is not None:
            self.start()
            elapsed = time.perf_counter() - self.started_at
            if elapsed > self.deadline_s:
                raise BudgetExhaustedError(
                    f"deadline exhausted: {elapsed:.3f}s elapsed "
                    f"(cap {self.deadline_s}s, last unit {what!r})",
                    stage="budget")

    def child(self) -> "ComputeBudget":
        """A budget for one ladder rung: fresh ops counter, *shared*
        absolute deadline.

        Each rung (and each start of a multi-start rung) gets the full
        ops allowance — keeping ops exhaustion a deterministic property
        of the rung's own work — while wall-clock keeps draining from
        the moment the original budget started, so falling down the
        ladder cannot extend the deadline.
        """
        self.start()
        return ComputeBudget(max_ops=self.max_ops,
                             deadline_s=self.deadline_s,
                             started_at=self.started_at)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view for attempt logs and stats."""
        return {
            "max_ops": self.max_ops,
            "deadline_s": self.deadline_s,
            "ops": self.ops,
            "elapsed_s": self.elapsed_s(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ComputeBudget(max_ops={self.max_ops}, "
                f"deadline_s={self.deadline_s}, ops={self.ops})")
