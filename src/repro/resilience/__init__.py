"""Resilience: the error taxonomy, fault injection, compute budgets,
and the graceful-degradation ladder.

This package is what turns the fast engine + service stack into a
*survivable* one:

* :mod:`repro.resilience.errors` — the structured ``MerlinError``
  taxonomy (input / resource / internal) and the picklable
  :class:`ErrorRecord` that carries failures across process and wire
  boundaries;
* :mod:`repro.resilience.budget` — cooperative compute budgets
  (deterministic op caps, wall deadlines) charged inside the engine;
* :mod:`repro.resilience.faults` — the deterministic, seeded
  fault-injection framework behind the chaos suite (no-op unless a
  :class:`FaultPlan` is installed or ``MERLIN_FAULTS`` is set);
* :mod:`repro.resilience.degrade` — the degradation ladder that always
  returns a valid tree, tagged ``degraded`` with the reason.

Layering: the package sits at rank 1 (next to ``net``/``tech``) so
every layer above can import the taxonomy and the fault points; the
ladder reaches *up* into the engine only through lazy imports.
"""

from repro.resilience.budget import ComputeBudget
from repro.resilience.degrade import (
    LADDER_RUNGS,
    LadderOutcome,
    coarsened_config,
    run_brownout,
    run_with_ladder,
)
from repro.resilience.errors import (
    CATEGORIES,
    CATEGORY_INPUT,
    CATEGORY_INTERNAL,
    CATEGORY_RESOURCE,
    BudgetExhaustedError,
    CacheCorruptionError,
    ErrorRecord,
    FaultInjected,
    JobTimeoutError,
    JournalCorruptError,
    MalformedNetError,
    MerlinError,
    MerlinInputError,
    MerlinInternalError,
    MerlinResourceError,
    PoolUnavailableError,
    ServerDrainingError,
    WorkerCrashError,
    classify,
    error_from_record,
)
from repro.resilience.supervise import (
    BreakerConfig,
    CircuitBreaker,
    ShardSupervisor,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    fault_point,
    install_fault_plan,
    load_env_plan,
    reset_fault_state,
    use_fault_plan,
)

__all__ = [
    "ComputeBudget",
    "LADDER_RUNGS",
    "LadderOutcome",
    "coarsened_config",
    "run_brownout",
    "run_with_ladder",
    "CATEGORIES",
    "CATEGORY_INPUT",
    "CATEGORY_INTERNAL",
    "CATEGORY_RESOURCE",
    "BudgetExhaustedError",
    "CacheCorruptionError",
    "ErrorRecord",
    "FaultInjected",
    "JobTimeoutError",
    "JournalCorruptError",
    "MalformedNetError",
    "MerlinError",
    "MerlinInputError",
    "MerlinInternalError",
    "MerlinResourceError",
    "PoolUnavailableError",
    "ServerDrainingError",
    "WorkerCrashError",
    "classify",
    "error_from_record",
    "BreakerConfig",
    "CircuitBreaker",
    "ShardSupervisor",
    "FaultPlan",
    "FaultSpec",
    "active_fault_plan",
    "fault_point",
    "install_fault_plan",
    "load_env_plan",
    "reset_fault_state",
    "use_fault_plan",
]
