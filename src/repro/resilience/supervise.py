"""Circuit breakers and the shard supervisor for the serving tier.

A :class:`CircuitBreaker` guards one ``OptimizationService`` shard in
the async front end.  It is a classic three-state machine:

* ``closed`` — traffic flows; failures are tallied in a rolling window.
  The breaker opens on either *consecutive* failures
  (``failure_threshold``) or a windowed *error rate*
  (``error_rate_threshold`` over at least ``min_window`` outcomes).
* ``open`` — traffic is short-circuited (the ring walk skips the shard
  without paying a dispatch).  After ``open_duration_s`` — stretched by
  a seeded jitter so a fleet of breakers does not probe in lockstep —
  the next ``allow()`` flips to half-open.
* ``half_open`` — up to ``half_open_probes`` trial calls are let
  through.  One success closes the breaker; one failure re-opens it
  with a fresh (re-jittered) deadline.

Everything is deterministic and testable: the clock is injectable, the
jitter comes from a ``random.Random`` seeded per breaker, and every
state transition is kept in a bounded history that ``snapshot()``
exposes for ``/v1/healthz``, ``/v1/stats``, and the chaos suite.

:class:`ShardSupervisor` is the active half: an asyncio task owned by
the async server that health-probes every shard each tick (through the
same breaker accounting as real traffic, which is what drives the
open → half-open → closed recovery without needing a client request)
and restarts the broken shard's worker pool — with seeded, jittered
backoff — whenever its breaker trips open.

Layering: rank 1, next to the fault framework; the supervisor reaches
the serving layer only through the probe/restart callables handed to
it, so this module imports neither ``repro.serve`` nor
``repro.service``.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Deque, Dict, List, Optional

from repro.instrument import names as metric

__all__ = [
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "BreakerConfig",
    "CircuitBreaker",
    "ShardSupervisor",
]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"

#: Transition history kept per breaker (enough for any test window).
_HISTORY_LIMIT = 64


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds and timing for one per-shard circuit breaker.

    ``failure_threshold`` consecutive failures — or an error rate of at
    least ``error_rate_threshold`` across a rolling ``window`` once
    ``min_window`` outcomes have been seen — trip the breaker open.  It
    stays open for ``open_duration_s`` seconds, jittered by up to
    ``jitter`` (fraction, seeded) so recovery probes de-synchronize.
    """

    failure_threshold: int = 3
    error_rate_threshold: float = 0.5
    window: int = 16
    min_window: int = 8
    open_duration_s: float = 1.0
    half_open_probes: int = 1
    jitter: float = 0.25
    seed: int = 1999

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if not 0.0 < self.error_rate_threshold <= 1.0:
            raise ValueError("error_rate_threshold must be in (0, 1]")
        if self.window < 1 or self.min_window < 1:
            raise ValueError("window sizes must be >= 1")
        if self.min_window > self.window:
            raise ValueError("min_window cannot exceed window")
        if self.open_duration_s <= 0.0:
            raise ValueError("open_duration_s must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


class CircuitBreaker:
    """Thread-safe three-state breaker with an injectable clock.

    ``allow()`` is called before dispatching to the shard (by both the
    request path and the supervisor's probe); ``record_success()`` /
    ``record_failure()`` report the outcome.  The breaker never raises
    — policy belongs to the caller.
    """

    def __init__(self, config: Optional[BreakerConfig] = None, *,
                 name: str = "", clock: Callable[[], float] = time.monotonic
                 ) -> None:
        self.config = config or BreakerConfig()
        self.name = name
        self._clock = clock
        # Per-breaker stream: the name folds into the seed so shards
        # jitter differently but reproducibly.
        self._rng = random.Random(f"{self.config.seed}:{name}")
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._window: Deque[bool] = deque(maxlen=self.config.window)
        self._opened_until = 0.0
        self._trial_budget = 0
        self._opens = 0
        self._transitions: Deque[Dict[str, Any]] = deque(
            maxlen=_HISTORY_LIMIT)

    # -- state machine -------------------------------------------------

    def allow(self) -> bool:
        """True if a call may be dispatched to the shard right now."""
        with self._lock:
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_OPEN:
                if self._clock() < self._opened_until:
                    return False
                self._transition(STATE_HALF_OPEN)
                self._trial_budget = self.config.half_open_probes
            # half-open: hand out the bounded trial budget.
            if self._trial_budget > 0:
                self._trial_budget -= 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._window.append(True)
            self._consecutive_failures = 0
            if self._state != STATE_CLOSED:
                self._transition(STATE_CLOSED)
                self._window.clear()
                self._trial_budget = 0

    def record_failure(self) -> None:
        with self._lock:
            self._window.append(False)
            self._consecutive_failures += 1
            if self._state == STATE_HALF_OPEN:
                self._open()
            elif self._state == STATE_CLOSED and self._should_open():
                self._open()

    def _should_open(self) -> bool:
        if self._consecutive_failures >= self.config.failure_threshold:
            return True
        if len(self._window) >= self.config.min_window:
            failures = sum(1 for ok in self._window if not ok)
            return failures / len(self._window) \
                >= self.config.error_rate_threshold
        return False

    def _open(self) -> None:
        # Called under the lock.  Jitter stretches the open window by a
        # seeded factor in [1, 1 + jitter) so breakers de-synchronize.
        stretch = 1.0 + self._rng.random() * self.config.jitter
        self._opened_until = self._clock() \
            + self.config.open_duration_s * stretch
        self._opens += 1
        self._transition(STATE_OPEN)
        self._trial_budget = 0

    def _transition(self, to_state: str) -> None:
        self._transitions.append({
            "from": self._state, "to": to_state, "at": self._clock()})
        self._state = to_state

    # -- observability -------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def opens(self) -> int:
        """Times this breaker has tripped open (its *generation*)."""
        with self._lock:
            return self._opens

    def states_seen(self) -> List[str]:
        """The state sequence so far (initial closed + each transition)."""
        with self._lock:
            return [STATE_CLOSED] + [t["to"] for t in self._transitions]

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready view for healthz/stats and the chaos suite."""
        with self._lock:
            window = list(self._window)
            failures = sum(1 for ok in window if not ok)
            return {
                "name": self.name,
                "state": self._state,
                "opens": self._opens,
                "consecutive_failures": self._consecutive_failures,
                "window": len(window),
                "window_failures": failures,
                "error_rate": (failures / len(window)) if window else 0.0,
                "transitions": [dict(t) for t in self._transitions],
            }


class ShardSupervisor:
    """Asyncio task that probes shards and restarts broken pools.

    Each tick the supervisor walks every shard whose breaker admits a
    call (``allow()`` — which is also what flips an expired open
    breaker to half-open) and runs ``probe(index)``; the outcome feeds
    the same breaker as real traffic, so a recovered shard closes its
    breaker without waiting for a client request.  Whenever a breaker's
    open-generation advances, the shard's pool is restarted once via
    ``restart(index)`` after a seeded, jittered backoff.

    ``record(metric_name, value)`` receives the supervisor counters
    (keyed by the ``serve.supervisor.*`` names from
    :mod:`repro.instrument.names`) so the owner can forward them to its
    recorder under whatever locking it already uses.
    """

    def __init__(self, breakers: List[CircuitBreaker], *,
                 probe: Callable[[int], Awaitable[None]],
                 restart: Callable[[int], Awaitable[None]],
                 interval_s: float = 0.25,
                 backoff_base_s: float = 0.05,
                 backoff_max_s: float = 1.0,
                 seed: int = 1999,
                 record: Optional[Callable[[str, int], None]] = None
                 ) -> None:
        if interval_s <= 0.0:
            raise ValueError("interval_s must be positive")
        self.breakers = breakers
        self._probe = probe
        self._restart = restart
        self.interval_s = interval_s
        self._backoff_base_s = backoff_base_s
        self._backoff_max_s = backoff_max_s
        self._rng = random.Random(seed)
        self._record = record or (lambda name, value=1: None)
        self._restarted_generation = [0] * len(breakers)
        self._restart_streak = [0] * len(breakers)
        self._task: Optional["asyncio.Task[None]"] = None
        self.probes = 0
        self.probe_failures = 0
        self.restarts = 0

    # -- lifecycle -----------------------------------------------------

    def launch(self) -> None:
        """Spawn the supervision loop on the running event loop.

        (Named ``launch`` — not ``start`` — because it is synchronous:
        the serving tier's ``start``s are coroutines, and a same-named
        sync method invites exactly the discarded-coroutine confusion
        the ASYNC-UNAWAITED rule polices.)
        """
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="merlin-shard-supervisor")

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    # -- the loop ------------------------------------------------------

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            await self.tick()

    async def tick(self) -> None:
        """One supervision pass (public so tests can drive it directly)."""
        for index, breaker in enumerate(self.breakers):
            await self._restart_if_tripped(index, breaker)
            if not breaker.allow():
                continue
            self.probes += 1
            self._record(metric.SERVE_SUPERVISOR_PROBES, 1)
            try:
                await self._probe(index)
            except asyncio.CancelledError:
                raise
            except Exception:
                breaker.record_failure()
                self.probe_failures += 1
                self._record(metric.SERVE_SUPERVISOR_PROBE_FAILURES, 1)
            else:
                breaker.record_success()
                self._restart_streak[index] = 0

    async def _restart_if_tripped(self, index: int,
                                  breaker: CircuitBreaker) -> None:
        generation = breaker.opens
        if generation <= self._restarted_generation[index]:
            return
        self._restarted_generation[index] = generation
        streak = self._restart_streak[index]
        self._restart_streak[index] = streak + 1
        # Exponential backoff with seeded jitter, capped; the streak
        # resets on the first healthy probe after recovery.
        backoff = min(self._backoff_base_s * (2.0 ** streak),
                      self._backoff_max_s)
        backoff *= 1.0 + self._rng.random() * 0.25
        await asyncio.sleep(backoff)
        await self._restart(index)
        self.restarts += 1
        self._record(metric.SERVE_SUPERVISOR_RESTARTS, 1)

    def stats(self) -> Dict[str, Any]:
        return {
            "running": self.running,
            "interval_s": self.interval_s,
            "probes": self.probes,
            "probe_failures": self.probe_failures,
            "restarts": self.restarts,
        }
