"""The structured MERLIN error taxonomy.

Every failure the service layer can surface falls in one of three
categories, and the category — not the concrete class — is what
operational policy keys on:

* ``input``    — the request itself is wrong (malformed payload,
  impossible configuration).  Retrying is pointless; the HTTP front end
  maps these to **400**.
* ``resource`` — the request is fine but the system could not finish it
  (worker death, timeout, exhausted compute budget, no pool).  Retrying
  later may succeed; mapped to **503**.
* ``internal`` — the system broke its own invariants (corrupted cache
  entry, injected fault, engine bug).  Mapped to **500**.

Backward compatibility is structural: :class:`MerlinInputError` is a
``ValueError`` and the two other category bases are ``RuntimeError``
subclasses, so pre-taxonomy call sites catching the bare builtins keep
working unchanged.

:class:`ErrorRecord` is the picklable/JSON-able projection of an
exception that crosses process and wire boundaries (the service's
per-job error records, the HTTP error bodies).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Type

CATEGORY_INPUT = "input"
CATEGORY_RESOURCE = "resource"
CATEGORY_INTERNAL = "internal"

CATEGORIES = (CATEGORY_INPUT, CATEGORY_RESOURCE, CATEGORY_INTERNAL)


class MerlinError(Exception):
    """Base of the taxonomy; never raised directly by library code.

    ``stage`` names where in the pipeline the failure happened
    ("canonicalize", "engine", "pool", "cache", an injection site…) and
    is carried into the :class:`ErrorRecord`.
    """

    category: str = CATEGORY_INTERNAL

    def __init__(self, message: str, *, stage: Optional[str] = None) -> None:
        super().__init__(message)
        self.stage = stage

    @property
    def record(self) -> "ErrorRecord":
        return ErrorRecord(
            kind=type(self).__name__,
            category=self.category,
            stage=self.stage or "",
            message=str(self),
        )


class MerlinInputError(MerlinError, ValueError):
    """The request is invalid; retrying the same request cannot help."""

    category = CATEGORY_INPUT


class MerlinResourceError(MerlinError, RuntimeError):
    """The system ran out of something (workers, time, compute budget)."""

    category = CATEGORY_RESOURCE


class MerlinInternalError(MerlinError, RuntimeError):
    """The system violated its own invariants."""

    category = CATEGORY_INTERNAL


# -- concrete kinds ----------------------------------------------------


class MalformedNetError(MerlinInputError):
    """A net payload failed to deserialize; the message names the
    offending sink/field."""


class JobTimeoutError(MerlinResourceError):
    """A service job exceeded its per-job timeout."""


class WorkerCrashError(MerlinResourceError):
    """A pool worker process died while holding a job."""


class PoolUnavailableError(MerlinResourceError):
    """No process pool could be (re)built for pool-only work."""


class BudgetExhaustedError(MerlinResourceError):
    """A cooperative compute budget (op count or wall deadline) ran out
    inside the engine; the degradation ladder catches this."""


class CacheCorruptionError(MerlinInternalError):
    """A disk-cache entry failed its checksum or schema check."""


class AdmissionRejectedError(MerlinResourceError):
    """The serving tier's bounded request queue is full; the request was
    rejected before any work happened.  The HTTP front ends map this to
    **429** with a ``Retry-After`` header (retrying later is exactly the
    right response, unlike the generic 503 resource failures)."""


class ShardUnavailableError(MerlinResourceError):
    """A sharded worker pool could not take the request and the inline
    fallback failed too (shard-down normally degrades silently)."""


class UnknownPathError(MerlinInputError):
    """The request named an HTTP path no front end serves (404)."""


class ServerDrainingError(MerlinResourceError):
    """The front end is draining for shutdown: in-flight requests run to
    completion but new work is refused with **503** + ``Retry-After``
    (another replica — or the same one after restart — should take it)."""


class JournalCorruptError(MerlinInputError):
    """A closure journal failed its checksum/structure check somewhere
    other than the torn final line; resuming over it would lose state."""


class FaultInjected(MerlinInternalError):
    """An error deliberately raised by the fault-injection framework."""


#: Concrete classes resolvable by name from a wire-format record.
_KINDS: Dict[str, Type[MerlinError]] = {
    cls.__name__: cls
    for cls in (
        MerlinError, MerlinInputError, MerlinResourceError,
        MerlinInternalError, MalformedNetError, JobTimeoutError,
        WorkerCrashError, PoolUnavailableError, BudgetExhaustedError,
        CacheCorruptionError, AdmissionRejectedError,
        ShardUnavailableError, UnknownPathError, ServerDrainingError,
        JournalCorruptError, FaultInjected,
    )
}

_CATEGORY_BASES: Dict[str, Type[MerlinError]] = {
    CATEGORY_INPUT: MerlinInputError,
    CATEGORY_RESOURCE: MerlinResourceError,
    CATEGORY_INTERNAL: MerlinInternalError,
}


@dataclass(frozen=True)
class ErrorRecord:
    """Picklable, JSON-able projection of one failure.

    ``degraded`` marks records attached to *successful* but degraded
    answers (the ladder's attempt log); records describing outright
    failures leave it False.
    """

    kind: str
    category: str
    stage: str
    message: str
    degraded: bool = False

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise MerlinInputError(
                f"unknown error category {self.category!r}; "
                f"expected one of {CATEGORIES}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "category": self.category,
            "stage": self.stage,
            "message": self.message,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ErrorRecord":
        return cls(
            kind=str(data.get("kind", "MerlinError")),
            category=str(data.get("category", CATEGORY_INTERNAL)),
            stage=str(data.get("stage", "")),
            message=str(data.get("message", "")),
            degraded=bool(data.get("degraded", False)),
        )

    def with_stage(self, stage: str) -> "ErrorRecord":
        return replace(self, stage=stage)


def classify(exc: BaseException, stage: str = "") -> ErrorRecord:
    """Project any exception onto the taxonomy.

    Typed :class:`MerlinError` instances keep their own kind/category
    (their own ``stage`` wins over the argument); builtins are sorted by
    the conventional meaning of their class — value/type/lookup errors
    are bad input, memory/OS/timeout pressure is a resource problem, and
    anything else is an internal failure.
    """
    if isinstance(exc, MerlinError):
        record = exc.record
        if not record.stage and stage:
            record = record.with_stage(stage)
        return record
    if isinstance(exc, (ValueError, TypeError, KeyError, IndexError)):
        category = CATEGORY_INPUT
    elif isinstance(exc, (MemoryError, OSError, TimeoutError)):
        category = CATEGORY_RESOURCE
    else:
        category = CATEGORY_INTERNAL
    return ErrorRecord(
        kind=type(exc).__name__,
        category=category,
        stage=stage,
        message=str(exc) or repr(exc),
    )


def error_from_record(record: ErrorRecord) -> MerlinError:
    """Reconstruct a raisable typed error from a wire-format record.

    Unknown kinds fall back to the record's category base class, so a
    newer service cannot produce records an older client cannot raise.
    """
    cls = _KINDS.get(record.kind)
    if cls is None or cls.category != record.category:
        cls = _CATEGORY_BASES.get(record.category, MerlinInternalError)
    return cls(record.message, stage=record.stage or None)
