"""The graceful-degradation ladder: always answer with a valid tree.

``run_with_ladder`` wraps the engine in a sequence of progressively
cheaper strategies ("rungs") and returns the first one that completes
within its compute budget:

1. ``multi_start``     — restarts from several initial orders (only when
   the caller asked for seeds); the full-quality path.
2. ``single_start``    — one deterministic MERLIN run from the TSP
   order; what the service runs by default.
3. ``coarse_curves``   — one MERLIN iteration under aggressively
   coarsened knobs (4x curve quantization steps, thinned candidates and
   library, α ≤ 3): the DP's pseudo-polynomial terms shrink by orders
   of magnitude, trading quality for a much smaller op count.
4. ``buffered_star``   — the O(n) search-free baseline
   (:func:`repro.baselines.star.buffered_star`); cannot exhaust any
   budget and cannot fail on a valid net.

Budget semantics: every rung (and every start within the multi-start
rung) is charged against a *child* of the caller's budget — a fresh ops
counter over a shared absolute deadline (see
:meth:`~repro.resilience.budget.ComputeBudget.child`).  Ops exhaustion
is therefore deterministic per rung, while wall-clock keeps draining
across rungs so the ladder cannot extend a deadline by falling.

The outcome is always tagged: ``degraded=False`` with ``rung`` naming
the first (intended) strategy when nothing failed — bit-identical to
calling that strategy directly, which keeps golden signatures stable —
or ``degraded=True`` with the machine-readable ``attempts`` log and a
human-readable ``reason`` otherwise.

Layering note: this module sits low (``resilience`` is rank 1) so the
engine can import the taxonomy; its imports of the engine, the parallel
drivers and the star baseline are deliberately lazy (function-body),
the sanctioned pattern the ``LAY-UPWARD`` rule exempts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.instrument import names as metric
from repro.instrument.recorder import active_recorder
from repro.resilience.budget import ComputeBudget
from repro.resilience.errors import (
    BudgetExhaustedError,
    MerlinInputError,
    classify,
)

RUNG_MULTI_START = "multi_start"
RUNG_SINGLE_START = "single_start"
RUNG_COARSE = "coarse_curves"
RUNG_STAR = "buffered_star"

#: Ladder order, top (best quality) to bottom (cheapest).
LADDER_RUNGS = (RUNG_MULTI_START, RUNG_SINGLE_START, RUNG_COARSE, RUNG_STAR)


@dataclass
class LadderOutcome:
    """What :func:`run_with_ladder` returns, whichever rung answered."""

    tree: Any
    signature: str
    cost: float
    iterations: int
    converged: bool
    #: The rung that produced :attr:`tree` (one of :data:`LADDER_RUNGS`).
    rung: str
    #: True when any higher rung failed before this one answered.
    degraded: bool
    #: Human-readable summary of why degradation happened (None when not).
    reason: Optional[str] = None
    #: One entry per failed rung: ``{"rung": ..., "error": record dict}``.
    attempts: List[Dict[str, Any]] = field(default_factory=list)
    cost_trace: List[float] = field(default_factory=list)


def coarsened_config(config: Any) -> Any:
    """The ``coarse_curves`` rung's knobs: ``config`` with every
    pseudo-polynomial term cut hard (4x coarser curve quantization,
    candidate/library thinning, α ≤ 3, a single outer iteration)."""
    curve = dataclasses.replace(
        config.curve,
        load_step=config.curve.load_step * 4,
        area_step=config.curve.area_step * 4,
        max_solutions=max(2, min(config.curve.max_solutions, 4)),
    )
    changes: Dict[str, Any] = {
        "curve": curve,
        "max_iterations": 1,
        "alpha": min(config.alpha, 3),
        "relocation_rounds": min(config.relocation_rounds, 1),
        "wire_width_options": (config.wire_width_options[0],),
    }
    if config.max_candidates is None or config.max_candidates > 5:
        changes["max_candidates"] = 5
    if config.library_subset is None or config.library_subset > 3:
        changes["library_subset"] = 3
    return config.with_(**changes)


def run_with_ladder(net: Any, tech: Any, config: Any = None,
                    objective: Any = None,
                    budget: Optional[ComputeBudget] = None,
                    seeds: Optional[Sequence[Optional[int]]] = None,
                    workers: Optional[int] = None) -> LadderOutcome:
    """Optimize ``net`` down the degradation ladder; see module docstring.

    ``seeds`` (two or more entries) enables the ``multi_start`` top
    rung; otherwise the ladder starts at ``single_start``.  ``budget``
    is optional — without one the first rung simply runs to completion
    and only genuine engine failures cause degradation.
    """
    from repro.core.config import MerlinConfig
    from repro.core.objective import Objective

    config = config or MerlinConfig()
    objective = objective or Objective.max_required_time()
    if budget is not None:
        budget.start()

    rungs: List[Tuple[str, Callable[[], LadderOutcome]]] = []
    if seeds is not None and len(seeds) >= 2:
        rungs.append((RUNG_MULTI_START, lambda: _run_multi_start(
            net, tech, config, objective, budget, seeds, workers)))
    rungs.append((RUNG_SINGLE_START, lambda: _run_merlin(
        net, tech, config, objective, budget, RUNG_SINGLE_START)))
    rungs.append((RUNG_COARSE, lambda: _run_merlin(
        net, tech, coarsened_config(config), objective, budget,
        RUNG_COARSE)))

    rec = active_recorder()
    attempts: List[Dict[str, Any]] = []
    outcome: Optional[LadderOutcome] = None
    for rung, runner in rungs:
        try:
            outcome = runner()
            break
        except MerlinInputError:
            # Bad input fails every rung identically; degrading would
            # only mask it. Let the caller's error isolation handle it.
            raise
        except BudgetExhaustedError as exc:
            if rec.enabled:
                rec.incr(metric.RESILIENCE_BUDGET_EXHAUSTED)
            attempts.append({"rung": rung,
                             "error": classify(exc, stage=rung).to_dict()})
        except Exception as exc:
            attempts.append({"rung": rung,
                             "error": classify(exc, stage=rung).to_dict()})
    if outcome is None:
        outcome = _run_star(net, tech, objective)

    if attempts:
        outcome.degraded = True
        outcome.attempts = attempts
        outcome.reason = "; ".join(
            f"{a['rung']}: {a['error']['message']}" for a in attempts)
        if rec.enabled:
            rec.incr(metric.RESILIENCE_DEGRADED)
            rec.event(metric.EVENT_DEGRADATION,
                      net=net.name, rung=outcome.rung,
                      reason=outcome.reason, attempts=len(attempts))
    return outcome


def run_brownout(net: Any, tech: Any, config: Any = None,
                 objective: Any = None,
                 budget: Optional[ComputeBudget] = None) -> LadderOutcome:
    """Brownout fast path: jump straight to the ``coarse_curves`` rung.

    Under sustained admission pressure the serving tier downgrades jobs
    to this preset instead of rejecting them with 429.  The answer is
    always tagged ``degraded=True`` with a reason naming brownout, so
    it is never cached and clients can tell they got the cheap tree.
    Falls to ``buffered_star`` if even the coarse rung fails.
    """
    from repro.core.config import MerlinConfig
    from repro.core.objective import Objective

    config = config or MerlinConfig()
    objective = objective or Objective.max_required_time()
    if budget is not None:
        budget.start()

    rec = active_recorder()
    attempts: List[Dict[str, Any]] = []
    try:
        outcome = _run_merlin(net, tech, coarsened_config(config), objective,
                              budget, RUNG_COARSE)
    except MerlinInputError:
        raise
    except BudgetExhaustedError as exc:
        if rec.enabled:
            rec.incr(metric.RESILIENCE_BUDGET_EXHAUSTED)
        attempts.append({"rung": RUNG_COARSE,
                         "error": classify(exc, stage=RUNG_COARSE).to_dict()})
        outcome = _run_star(net, tech, objective)
    except Exception as exc:
        attempts.append({"rung": RUNG_COARSE,
                         "error": classify(exc, stage=RUNG_COARSE).to_dict()})
        outcome = _run_star(net, tech, objective)

    outcome.degraded = True
    outcome.attempts = attempts
    reason = "brownout: admission pressure downgraded this job to the " \
             "coarse preset"
    if attempts:
        reason += "; " + "; ".join(
            f"{a['rung']}: {a['error']['message']}" for a in attempts)
    outcome.reason = reason
    if rec.enabled:
        rec.incr(metric.RESILIENCE_DEGRADED)
        rec.event(metric.EVENT_DEGRADATION,
                  net=net.name, rung=outcome.rung,
                  reason=outcome.reason, attempts=len(attempts))
    return outcome


# -- rung runners ------------------------------------------------------


def _child_budget(budget: Optional[ComputeBudget]) -> Optional[ComputeBudget]:
    return budget.child() if budget is not None else None


def _run_merlin(net: Any, tech: Any, config: Any, objective: Any,
                budget: Optional[ComputeBudget], rung: str) -> LadderOutcome:
    from repro.core.merlin import merlin
    from repro.routing.export import tree_signature

    result = merlin(net, tech,
                    config=config.with_(budget=_child_budget(budget)),
                    objective=objective)
    return LadderOutcome(
        tree=result.tree,
        signature=tree_signature(result.tree),
        cost=objective.cost(result.best.solution),
        iterations=result.iterations,
        converged=result.converged,
        rung=rung,
        degraded=False,
        cost_trace=list(result.cost_trace),
    )


def _run_multi_start(net: Any, tech: Any, config: Any, objective: Any,
                     budget: Optional[ComputeBudget],
                     seeds: Sequence[Optional[int]],
                     workers: Optional[int]) -> LadderOutcome:
    from repro import parallel

    # Each start charges its own child budget (fresh ops counter), so
    # exhaustion is per-start deterministic and independent of whether
    # the starts run serially or across a pool.
    tasks = [
        parallel.ParallelTask(
            net=net, tech=tech,
            config=config.with_(budget=_child_budget(budget)),
            objective=objective, initial_order=order, label=label)
        for label, order in parallel.multi_start_orders(net, seeds)
    ]
    result = parallel.run_tasks(tasks, workers=workers)
    best = result.best
    return LadderOutcome(
        tree=best.tree,
        signature=best.signature,
        cost=best.cost,
        iterations=best.iterations,
        converged=best.converged,
        rung=RUNG_MULTI_START,
        degraded=False,
        cost_trace=list(best.cost_trace),
    )


def _run_star(net: Any, tech: Any, objective: Any) -> LadderOutcome:
    """The budget-free floor: cannot fail on a valid net."""
    from repro.baselines.star import buffered_star
    from repro.routing.evaluate import evaluate_tree
    from repro.routing.export import tree_signature

    tree = buffered_star(net, tech)
    evaluation = evaluate_tree(tree, tech)
    return LadderOutcome(
        tree=tree,
        signature=tree_signature(tree),
        cost=_evaluation_cost(objective, evaluation),
        iterations=0,
        converged=False,
        rung=RUNG_STAR,
        degraded=False,
    )


def _evaluation_cost(objective: Any, evaluation: Any) -> float:
    """The objective scalar computed from a tree evaluation (the star
    rung has no DP solution to ask :meth:`Objective.cost` about)."""
    if objective.kind == "min_area":
        return float(evaluation.buffer_area)
    return -float(evaluation.required_time_at_driver)
