"""Deterministic, seeded fault injection for chaos testing.

The service layer promises crash recovery, corruption quarantine, and
graceful degradation; this module is how the chaos suite *proves* those
promises.  Production code threads named :func:`fault_point` calls
through its failure-prone seams (job dispatch, worker entry, cache
read/write, the HTTP handler, the parallel drivers); with no plan
installed a fault point is a near-free no-op, so the framework costs
nothing unless a chaos run activates it.

A :class:`FaultPlan` is a seed plus a list of :class:`FaultSpec`
triggers.  Everything is deterministic under a fixed seed: probabilistic
specs draw from a ``random.Random`` keyed by ``(seed, site, hit)`` — no
global RNG state — and hit counting is exact, so "crash the 2nd job
dispatch" means exactly that, every run.

Cross-process determinism needs one extra trick: a fault that *kills a
worker* also kills the in-memory hit counter the worker inherited, so a
``times=1`` crash spec would re-fire in every replacement worker
forever.  Specs may therefore name a ``ledger`` file — one appended line
per hit — making ``after``/``times`` windows effective across all
processes sharing the plan.

Activation:

* in code — ``install_fault_plan(plan)`` or the ``use_fault_plan(plan)``
  context manager (tests);
* from outside — the ``MERLIN_FAULTS`` environment variable, either
  inline JSON or ``@/path/to/plan.json``, loaded at import time (workers
  inherit it through the environment even under spawn).

Fault kinds: ``error`` raises :class:`FaultInjected`; ``hang`` sleeps
``hang_s`` (drive timeouts); ``crash`` hard-kills the current *worker*
process via ``os._exit`` (in a parent process it raises instead — a
chaos plan must not be able to take down the service itself); and
``corrupt`` mangles the data flowing through the point (torn cache
entries, malformed payloads).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.instrument import names as metric
from repro.instrument.recorder import active_recorder
from repro.resilience.errors import FaultInjected, MerlinInputError

#: Environment variable holding an inline JSON plan or ``@<path>``.
ENV_VAR = "MERLIN_FAULTS"

#: Exit code of a ``crash`` fault (distinctive in pool post-mortems).
CRASH_EXIT_CODE = 87

FAULT_KINDS = ("error", "hang", "crash", "corrupt")

#: Marker appended by ``corrupt`` faults to string/bytes data; applied
#: after truncation, it guarantees the result is not valid JSON.
CORRUPTION_MARKER = "!<<fault:corrupted>>!"


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: *where* (site glob), *what* (kind), and *when*.

    ``site`` may be a glob (``service.cache.*``).  The firing window is
    hits ``[after, after + times)`` per spec; ``times=None`` never
    stops.  ``probability`` thins the window with seeded, replayable
    Bernoulli draws.  ``match`` further restricts firing to calls whose
    ``key`` (e.g. the net name) contains the substring.
    """

    site: str
    kind: str
    times: Optional[int] = 1
    after: int = 0
    probability: float = 1.0
    hang_s: float = 0.05
    match: Optional[str] = None
    ledger: Optional[str] = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise MerlinInputError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise MerlinInputError("fault probability must be in [0, 1]")
        if self.times is not None and self.times < 0:
            raise MerlinInputError("fault times must be >= 0")
        if self.after < 0:
            raise MerlinInputError("fault after must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site, "kind": self.kind, "times": self.times,
            "after": self.after, "probability": self.probability,
            "hang_s": self.hang_s, "match": self.match,
            "ledger": self.ledger, "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        if not isinstance(data, dict):
            raise MerlinInputError(
                f"fault spec must be an object, got {type(data).__name__}")
        unknown = set(data) - {
            "site", "kind", "times", "after", "probability", "hang_s",
            "match", "ledger", "message",
        }
        if unknown:
            raise MerlinInputError(
                f"unknown fault spec fields: {sorted(unknown)}")
        if "site" not in data or "kind" not in data:
            raise MerlinInputError("fault spec needs 'site' and 'kind'")
        return cls(
            site=str(data["site"]),
            kind=str(data["kind"]),
            times=None if data.get("times", 1) is None
            else int(data.get("times", 1)),
            after=int(data.get("after", 0)),
            probability=float(data.get("probability", 1.0)),
            hang_s=float(data.get("hang_s", 0.05)),
            match=None if data.get("match") is None
            else str(data["match"]),
            ledger=None if data.get("ledger") is None
            else str(data["ledger"]),
            message=str(data.get("message", "")),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of fault specs."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "specs": [spec.to_dict() for spec in self.specs]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise MerlinInputError(
                f"fault plan must be an object, got {type(data).__name__}")
        specs = data.get("specs", [])
        if not isinstance(specs, (list, tuple)):
            raise MerlinInputError("fault plan 'specs' must be an array")
        return cls(seed=int(data.get("seed", 0)),
                   specs=tuple(FaultSpec.from_dict(s) for s in specs))

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        try:
            data = json.loads(blob)
        except ValueError as exc:
            raise MerlinInputError(
                f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


# -- active-plan state -------------------------------------------------

_ACTIVE_PLAN: Optional[FaultPlan] = None
#: In-memory hit counts keyed by (spec index, concrete site).
_HITS: Dict[Tuple[int, str], int] = {}


def active_fault_plan() -> Optional[FaultPlan]:
    return _ACTIVE_PLAN


def install_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` (None deactivates); returns the previous plan."""
    global _ACTIVE_PLAN
    previous, _ACTIVE_PLAN = _ACTIVE_PLAN, plan
    return previous


def reset_fault_state() -> None:
    """Clear the in-memory hit counters (ledger files are the caller's)."""
    _HITS.clear()


@contextmanager
def use_fault_plan(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Scoped activation for tests; restores the previous plan and
    clears hit counters on both entry and exit."""
    previous = install_fault_plan(plan)
    reset_fault_state()
    try:
        yield
    finally:
        install_fault_plan(previous)
        reset_fault_state()


def plan_from_env(value: Optional[str] = None) -> Optional[FaultPlan]:
    """Parse the ``MERLIN_FAULTS`` value (inline JSON or ``@path``)."""
    if value is None:
        value = os.environ.get(ENV_VAR)
    if not value:
        return None
    value = value.strip()
    if value.startswith("@"):
        path = value[1:]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                value = handle.read()
        except OSError as exc:
            raise MerlinInputError(
                f"{ENV_VAR} names an unreadable plan file {path!r}: "
                f"{exc}") from exc
    return FaultPlan.from_json(value)


def load_env_plan() -> Optional[FaultPlan]:
    """(Re)install the environment plan; returns what was installed."""
    plan = plan_from_env()
    if plan is not None:
        install_fault_plan(plan)
    return plan


# -- the injection point ----------------------------------------------


def fault_point(site: str, data: Any = None, key: Any = None) -> Any:
    """Declare an injection point named ``site``.

    Returns ``data`` unchanged unless an active spec fires here:
    ``corrupt`` returns a mangled copy, ``hang`` sleeps then returns,
    ``error`` raises :class:`FaultInjected`, ``crash`` kills the current
    worker process.  ``key`` gives specs something to ``match`` on.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return data
    for index, spec in enumerate(plan.specs):
        if not fnmatchcase(site, spec.site):
            continue
        if spec.match is not None and spec.match not in str(key):
            continue
        hit = _next_hit(index, site, spec)
        if hit < spec.after:
            continue
        if spec.times is not None and hit >= spec.after + spec.times:
            continue
        if spec.probability < 1.0 and not _bernoulli(plan.seed, site, hit,
                                                     spec.probability):
            continue
        data = _fire(spec, site, hit, data)
    return data


def _next_hit(index: int, site: str, spec: FaultSpec) -> int:
    """This call's 0-based hit number for ``spec`` at ``site``.

    With a ledger file the count is shared across every process that
    appends to it (exact ordering between racing processes is
    unimportant: the window sizes stay exact).
    """
    if spec.ledger is not None:
        tag = f"{index}:{site}\n"
        count = 0
        try:
            with open(spec.ledger, "r", encoding="utf-8") as handle:
                count = sum(1 for line in handle if line == tag)
        except OSError:
            count = 0
        try:
            with open(spec.ledger, "a", encoding="utf-8") as handle:
                handle.write(tag)
        except OSError:
            pass
        return count
    key = (index, site)
    hit = _HITS.get(key, 0)
    _HITS[key] = hit + 1
    return hit


def _bernoulli(seed: int, site: str, hit: int, probability: float) -> bool:
    """A replayable coin flip: same (seed, site, hit) → same outcome."""
    return random.Random(f"{seed}|{site}|{hit}").random() < probability


def _fire(spec: FaultSpec, site: str, hit: int, data: Any) -> Any:
    rec = active_recorder()
    if rec.enabled:
        rec.incr(metric.RESILIENCE_FAULTS_INJECTED)
        rec.incr(metric.resilience_fault(site))
    message = spec.message or (
        f"injected {spec.kind} fault at {site} (hit {hit})")
    if spec.kind == "hang":
        time.sleep(spec.hang_s)
        return data
    if spec.kind == "corrupt":
        return corrupt(data)
    if spec.kind == "crash":
        if multiprocessing.parent_process() is not None:
            os._exit(CRASH_EXIT_CODE)
        # In the parent (service/CLI) process a hard exit would take the
        # whole service down — degrade the fault to a raised error so the
        # isolation machinery handles it instead.
        raise FaultInjected(
            f"{message} [crash downgraded to error: not in a worker "
            f"process]", stage=site)
    raise FaultInjected(message, stage=site)


def corrupt(data: Any) -> Any:
    """Deterministically mangle ``data`` (the ``corrupt`` fault body).

    Strings and bytes are truncated to half length and stamped with
    :data:`CORRUPTION_MARKER` — never valid JSON afterwards.  Dicts get
    a marker key and lose one real key.  Other values are replaced by
    the marker itself.
    """
    if isinstance(data, bytes):
        return data[: len(data) // 2] + CORRUPTION_MARKER.encode("ascii")
    if isinstance(data, str):
        return data[: len(data) // 2] + CORRUPTION_MARKER
    if isinstance(data, dict):
        mangled = dict(data)
        for key in sorted(mangled, key=str):
            del mangled[key]
            break
        mangled["__corrupted__"] = CORRUPTION_MARKER
        return mangled
    return CORRUPTION_MARKER


# A plan in the environment activates at import so every process of a
# chaos run (parent, spawned or forked workers) sees the same triggers.
load_env_plan()
