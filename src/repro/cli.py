"""Command-line interface: regenerate the paper's tables and ablations.

Usage (after ``pip install -e .``)::

    merlin-repro table1 [--quick] [--seed N]
    merlin-repro table2 [--quick] [--seed N]
    merlin-repro net --sinks N [--seed N] [--net-file FILE] [--stats]
    merlin-repro ablation {candidates,orders,alpha,bubbling,convergence,curves}
    merlin-repro serve --port N [--workers K] [--cache-dir DIR]
                       [--budget-ops N] [--deadline S] [--pool-retries N]
                       [--async --shards N --queue-limit N]
    merlin-repro loadgen [--url URL | --cross-check | (self-serve)]
                         [--requests N] [--concurrency C] [--record FILE]
                         [--replay FILE] [--out BENCH_serve.json]
    merlin-repro closure --circuit b9 [--order criticality] [--batch N]
                         [--json] [--list-orders]
                         [--journal FILE | --resume FILE]
    merlin-repro check [--format json] [--rules ID,...] [paths ...]
    merlin-repro bench [--quick] [--backends LIST] [--baseline FILE]
                       [--profile N [--profile-format json]]

``python -m repro ...`` is equivalent.

``--backend`` and ``--workers`` are thin overrides of the
``MerlinConfig.backend`` / ``MerlinConfig.workers`` fields — library
users get the same knobs without the CLI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import MerlinConfig
from repro.tech.technology import default_technology


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="merlin-repro",
        description="MERLIN (DAC 1999) reproduction experiment driver")
    sub = parser.add_subparsers(dest="command", required=True)

    p_t1 = sub.add_parser("table1", help="per-net Flow I/II/III comparison")
    p_t1.add_argument("--quick", action="store_true",
                      help="6-net subset instead of all 18")
    p_t1.add_argument("--seed", type=int, default=1999)

    p_t2 = sub.add_parser("table2", help="post-layout circuit comparison")
    p_t2.add_argument("--quick", action="store_true",
                      help="4-circuit subset instead of all 15")
    p_t2.add_argument("--seed", type=int, default=1999)

    p_net = sub.add_parser("net", help="optimize one synthetic net verbosely")
    p_net.add_argument("--sinks", type=int, default=7)
    p_net.add_argument("--seed", type=int, default=1)
    p_net.add_argument("--net-file", metavar="FILE", default=None,
                       help="optimize the net in FILE (net interchange "
                            "JSON, see net_to_dict) instead of a synthetic "
                            "one; malformed input exits 2 with a one-line "
                            "error naming the offending field")
    p_net.add_argument("--backend", choices=["python", "numpy"],
                       default=None,
                       help="curve-kernel backend override (default: the "
                            "config's backend, i.e. python; numpy degrades "
                            "to python when NumPy is unavailable)")
    p_net.add_argument("--multi-start", type=int, default=0, metavar="K",
                       help="restart MERLIN from K initial orders (TSP "
                            "plus K-1 seeded shuffles) and keep the best "
                            "tree, instead of running the flow comparison")
    p_net.add_argument("--workers", type=int, default=None,
                       help="process fan-out override for --multi-start "
                            "(default: the config's workers, i.e. 1; "
                            "0 = one per CPU)")
    p_net.add_argument("--dot", action="store_true",
                       help="print the winning tree as Graphviz DOT")
    p_net.add_argument("--stats", action="store_true",
                       help="record engine instrumentation and dump a "
                            "JSON stats report after the run")
    p_net.add_argument("--stats-out", metavar="FILE", default=None,
                       help="write the JSON report to FILE instead of "
                            "stdout (implies --stats)")

    p_ab = sub.add_parser("ablation", help="prose-claim ablations (E3-E8)")
    p_ab.add_argument("which", choices=["candidates", "orders", "alpha",
                                        "bubbling", "convergence", "curves"])
    p_ab.add_argument("--sinks", type=int, default=6)
    p_ab.add_argument("--seed", type=int, default=1)

    p_srv = sub.add_parser(
        "serve", help="run the HTTP optimization service (v1 API: "
                      "POST /v1/optimize, POST /v1/closure, GET /v1/stats, "
                      "GET /v1/healthz)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8731)
    p_srv.add_argument("--async", dest="async_mode", action="store_true",
                       help="asyncio front end with consistent-hash "
                            "sharding and bounded admission instead of "
                            "the sync threading server")
    p_srv.add_argument("--shards", type=int, default=2, metavar="N",
                       help="worker-pool shards behind --async "
                            "(default 2)")
    p_srv.add_argument("--queue-limit", type=int, default=64, metavar="N",
                       help="max in-flight requests before --async "
                            "answers 429 + Retry-After (default 64)")
    p_srv.add_argument("--workers", type=int, default=None,
                       help="warm-pool size (default: the config's "
                            "workers; 0 = one per CPU; 1 = serial)")
    p_srv.add_argument("--backend", choices=["python", "numpy"],
                       default=None,
                       help="curve-kernel backend override")
    p_srv.add_argument("--preset", choices=["fast", "test", "paper"],
                       default="fast",
                       help="MerlinConfig preset the service optimizes "
                            "with (part of the cache key)")
    p_srv.add_argument("--job-timeout", type=float, default=None,
                       metavar="S", help="per-request engine timeout "
                                         "(seconds; default none)")
    p_srv.add_argument("--budget-ops", type=int, default=None, metavar="N",
                       help="deterministic per-job compute budget; on "
                            "exhaustion the job degrades down the ladder "
                            "instead of failing (default: unlimited)")
    p_srv.add_argument("--deadline", type=float, default=None, metavar="S",
                       help="per-job wall-clock deadline in seconds, "
                            "same degradation semantics as --budget-ops")
    p_srv.add_argument("--pool-retries", type=int, default=2, metavar="N",
                       help="rebuild a crashed worker pool up to N times "
                            "before finishing jobs serially (default 2)")
    p_srv.add_argument("--cache-capacity", type=int, default=256,
                       help="in-memory LRU entries (default 256)")
    p_srv.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persist results as JSON under DIR (off by "
                            "default)")
    p_srv.add_argument("--brownout-after", type=int, default=None,
                       metavar="N",
                       help="(--async) after N consecutive saturated "
                            "admissions, downgrade optimize jobs to the "
                            "fast degraded preset instead of answering "
                            "429 (default: off)")
    p_srv.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="S",
                       help="max seconds to wait for in-flight requests "
                            "when SIGTERM starts a graceful drain "
                            "(default 30)")
    p_srv.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    p_lg = sub.add_parser(
        "loadgen", help="seeded load generation / replay against a "
                        "serving front end (latency percentiles, "
                        "BENCH_serve.json, bit-identity gates)")
    p_lg.add_argument("--url", default=None, metavar="URL",
                      help="target an already-running front end; without "
                           "it an async sharded server is spun up "
                           "in-process for the run")
    p_lg.add_argument("--cross-check", action="store_true",
                      help="replay through BOTH the sync and the async "
                           "path in-process and fail on any tree-"
                           "signature divergence (ignores --url)")
    p_lg.add_argument("--requests", type=int, default=64)
    p_lg.add_argument("--nets", type=int, default=16, metavar="N",
                      help="distinct underlying nets (default 16)")
    p_lg.add_argument("--min-sinks", type=int, default=4)
    p_lg.add_argument("--max-sinks", type=int, default=10)
    p_lg.add_argument("--seed", type=int, default=1999)
    p_lg.add_argument("--twin-fraction", type=float, default=0.25,
                      help="fraction of renamed cache-equivalent twins "
                           "(default 0.25)")
    p_lg.add_argument("--repeat-fraction", type=float, default=0.25,
                      help="fraction of verbatim repeats (default 0.25)")
    p_lg.add_argument("--translate-twins", action="store_true",
                      help="also translate twins (cache-realistic but "
                           "not bit-stable across replays; see "
                           "repro.loadgen.workload)")
    p_lg.add_argument("--concurrency", type=int, default=4)
    p_lg.add_argument("--record", metavar="FILE", default=None,
                      help="save the generated workload JSON to FILE")
    p_lg.add_argument("--replay", metavar="FILE", default=None,
                      help="replay the recorded workload in FILE instead "
                           "of generating one")
    p_lg.add_argument("--out", metavar="FILE", default=None,
                      help="write the BENCH_serve.json artifact to FILE")
    p_lg.add_argument("--tag", default="serve",
                      help="tag stored in the artifact (default serve)")
    p_lg.add_argument("--no-check", action="store_true",
                      help="skip the per-replay equivalence-class "
                           "signature gate")
    p_lg.add_argument("--shards", type=int, default=2,
                      help="shards of the in-process async server "
                           "(self-serve and --cross-check modes)")
    p_lg.add_argument("--queue-limit", type=int, default=64)
    p_lg.add_argument("--workers", type=int, default=1,
                      help="warm-pool size per service (default 1)")
    p_lg.add_argument("--preset", choices=["fast", "test", "paper"],
                      default="fast",
                      help="MerlinConfig preset of in-process services "
                           "(default fast)")
    p_lg.add_argument("--backend", choices=["python", "numpy"],
                      default=None)

    p_cls = sub.add_parser(
        "closure", help="full-netlist timing closure (place, STA, "
                        "iterated batched re-optimization)")
    p_cls.add_argument("--circuit", default="b9", metavar="SPEC",
                       help="Table 2 circuit name (e.g. b9, C432) or a "
                            "custom seed-spec 'gates:levels:pis:pos"
                            "[:max_fanout]' (default b9)")
    p_cls.add_argument("--seed", type=int, default=1999,
                       help="circuit-generator seed (default 1999)")
    p_cls.add_argument("--netlist-file", metavar="FILE", default=None,
                       help="close timing on the netlist interchange "
                            "JSON in FILE instead of a generated circuit")
    p_cls.add_argument("--order", default="criticality",
                       help="net-ordering policy; see --list-orders "
                            "(default criticality)")
    p_cls.add_argument("--list-orders", action="store_true",
                       help="list registered ordering policies and exit")
    p_cls.add_argument("--batch", type=int, default=None, metavar="N",
                       help="nets re-optimized per iteration "
                            "(default: every stale candidate)")
    p_cls.add_argument("--max-iterations", type=int, default=10)
    p_cls.add_argument("--target-scale", type=float, default=0.88,
                       help="timing target as a fraction of the "
                            "pre-optimization critical delay "
                            "(default 0.88)")
    p_cls.add_argument("--min-sinks", type=int, default=2,
                       help="only optimize nets with at least this many "
                            "sinks (default 2)")
    p_cls.add_argument("--preset", choices=["fast", "test", "paper"],
                       default="fast",
                       help="MerlinConfig preset for the per-net "
                            "optimizations (default fast)")
    p_cls.add_argument("--backend", choices=["python", "numpy"],
                       default=None,
                       help="curve-kernel backend override")
    p_cls.add_argument("--workers", type=int, default=None,
                       help="service warm-pool size (default: the "
                            "config's workers; 0 = one per CPU)")
    p_cls.add_argument("--json", action="store_true",
                       help="print the full closure report as JSON "
                            "instead of the iteration table")
    p_cls.add_argument("--journal", metavar="FILE", default=None,
                       help="write a crash-safe write-ahead journal: "
                            "each completed iteration is checksummed "
                            "and fsync'd to FILE")
    p_cls.add_argument("--resume", metavar="FILE", default=None,
                       help="resume a crashed run from its journal: "
                            "completed iterations replay bit-identically "
                            "and the loop continues from the crash point")

    p_chk = sub.add_parser(
        "check", help="run the domain static analyzer "
                      "(determinism / pool-safety / numerics / layering)")
    from repro.staticcheck.cli import add_arguments as _add_check_arguments

    _add_check_arguments(p_chk)

    p_bench = sub.add_parser(
        "bench", help="pinned benchmark suite with equivalence + timing "
                      "gates (same flags as python -m repro.bench)")
    from repro.bench import add_arguments as _add_bench_arguments

    _add_bench_arguments(p_bench)

    args = parser.parse_args(argv)
    if args.command == "check":
        return _run_check(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "table1":
        return _run_table1(args)
    if args.command == "table2":
        return _run_table2(args)
    if args.command == "net":
        return _run_net(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "loadgen":
        return _run_loadgen(args)
    if args.command == "closure":
        return _run_closure(args)
    return _run_ablation(args)


def _run_check(args) -> int:
    from repro.staticcheck.cli import run_from_args

    return run_from_args(args)


def _run_bench(args) -> int:
    from repro.bench import run_from_args

    return run_from_args(args)


def _run_table1(args) -> int:
    from repro.experiments.table1 import format_table1, run_table1

    rows = run_table1(quick=args.quick, seed=args.seed)
    print(format_table1(rows))
    return 0


def _run_table2(args) -> int:
    from repro.experiments.table2 import format_table2, run_table2

    rows = run_table2(quick=args.quick, seed=args.seed)
    print(format_table2(rows))
    return 0


def _load_net_file(path: str):
    """Read a net interchange JSON file; raises ValueError with a
    one-line, human-readable message on any malformed input."""
    import json

    from repro.net import net_from_dict

    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ValueError(f"cannot read net file {path!r}: "
                         f"{exc.strerror or exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"net file {path!r} is not valid JSON: "
                         f"{exc}") from exc
    if isinstance(data, dict) and isinstance(data.get("net"), dict):
        data = data["net"]  # accept the service's request wrapper too
    return net_from_dict(data)


def _run_net(args) -> int:
    from repro.baselines.flows import ALL_FLOWS, run_flow
    from repro.experiments.nets import make_experiment_net
    from repro.routing.export import tree_to_dot

    if args.net_file is not None:
        try:
            net = _load_net_file(args.net_file)
        except ValueError as exc:
            # One line, no traceback: the message already names the
            # offending file/field (MalformedNetError is a ValueError).
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        net = make_experiment_net(f"net_s{args.seed}", args.sinks, args.seed)
    tech = default_technology()
    config = MerlinConfig().with_(max_iterations=3)
    if args.backend is not None:
        config = config.with_(backend=args.backend)
    if args.multi_start:
        return _run_multi_start(args, net, tech, config)
    recorder = None
    if args.stats or args.stats_out:
        import os

        from repro.instrument import Recorder

        if args.stats_out:
            out_dir = os.path.dirname(os.path.abspath(args.stats_out))
            if not os.path.isdir(out_dir):
                # Fail before the (slow) run, not after it.
                print(f"error: --stats-out directory does not exist: "
                      f"{out_dir}", file=sys.stderr)
                return 2
        recorder = Recorder()
        config = config.with_(recorder=recorder)
    last = None
    for flow in ALL_FLOWS:
        result = run_flow(flow, net, tech, config=config)
        print(f"{flow:22s} delay={result.delay:9.1f} ps  "
              f"buffer_area={result.buffer_area:8.1f} um^2  "
              f"runtime={result.runtime_s:7.2f} s  loops={result.loops}")
        last = result
    if args.dot and last is not None:
        print(tree_to_dot(last.tree.simplified()))
    if recorder is not None:
        from repro.instrument import dump_report, report_to_json

        report = recorder.report()
        if args.stats_out:
            dump_report(report, args.stats_out)
            print(f"stats report written to {args.stats_out}")
        else:
            print(report_to_json(report))
    return 0


def _run_multi_start(args, net, tech, config) -> int:
    import time

    from repro import parallel

    workers = _resolve_cli_workers(args.workers, config)
    seeds = [None] + list(range(1, args.multi_start))
    start = time.perf_counter()
    outcome = parallel.run_multi_start(net, tech, config=config,
                                       seeds=seeds, workers=workers)
    wall = time.perf_counter() - start
    for result in outcome.results:
        marker = " <- best" if result is outcome.best else ""
        print(f"{result.label:12s} cost={result.cost:12.3f}  "
              f"iterations={result.iterations}{marker}")
    print(f"{len(outcome.results)} starts, workers={workers}, "
          f"wall={wall:.2f}s")
    return 0


def _resolve_cli_workers(cli_workers, config) -> int:
    """CLI worker override: None = config's value, 0 = one per CPU."""
    from repro import parallel

    if cli_workers is None:
        return config.workers
    if cli_workers == 0:
        return parallel.default_worker_count()
    return cli_workers


def _resolve_preset_config(preset: str, backend):
    presets = {
        "fast": MerlinConfig.fast_preset,
        "test": MerlinConfig.test_preset,
        "paper": MerlinConfig.paper_preset,
    }
    config = presets[preset]()
    if backend is not None:
        config = config.with_(backend=backend)
    return config


def _run_serve(args) -> int:
    from repro.service import OptimizationService, ResultCache, serve

    config = _resolve_preset_config(args.preset, args.backend)
    workers = _resolve_cli_workers(args.workers, config)

    def service_factory(cache) -> OptimizationService:
        return OptimizationService(
            tech=default_technology(),
            config=config,
            cache=cache,
            workers=workers,
            job_timeout_s=args.job_timeout,
            budget_ops=args.budget_ops,
            deadline_s=args.deadline,
            pool_retries=args.pool_retries,
        )

    if args.async_mode:
        from repro.serve import serve_async

        serve_async(args.host, args.port,
                    shards=args.shards,
                    queue_limit=args.queue_limit,
                    cache_capacity=args.cache_capacity,
                    disk_dir=args.cache_dir,
                    service_factory=service_factory,
                    brownout_after=args.brownout_after,
                    drain_timeout_s=args.drain_timeout)
        return 0
    service = service_factory(ResultCache(capacity=args.cache_capacity,
                                          disk_dir=args.cache_dir))
    serve(args.host, args.port, service=service, verbose=args.verbose,
          drain_timeout_s=args.drain_timeout)
    return 0


def _run_loadgen(args) -> int:
    from repro.loadgen import (
        WorkloadSpec,
        check_equivalence,
        generate_workload,
        load_workload,
        render_trend,
        run_cross_check,
        run_workload,
        save_workload,
        write_bench_serve,
    )
    from repro.resilience.errors import MerlinInputError

    if args.replay is not None:
        try:
            workload = load_workload(args.replay)
        except (OSError, ValueError, KeyError, TypeError,
                MerlinInputError) as exc:
            print(f"error: cannot load workload {args.replay!r}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        try:
            spec = WorkloadSpec(
                requests=args.requests, distinct_nets=args.nets,
                min_sinks=args.min_sinks, max_sinks=args.max_sinks,
                seed=args.seed, twin_fraction=args.twin_fraction,
                repeat_fraction=args.repeat_fraction,
                translate_twins=args.translate_twins)
        except MerlinInputError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        workload = generate_workload(spec)
    if args.record is not None:
        save_workload(workload, args.record)
        print(f"workload recorded to {args.record} "
              f"({len(workload)} requests)")

    config = _resolve_preset_config(args.preset, args.backend)
    service_kwargs = {"config": config, "workers": args.workers,
                      "tech": default_technology()}
    failures: List[str] = []
    mode = "replay"
    if args.cross_check:
        mode = "cross-check"
        verdict = run_cross_check(workload, shards=args.shards,
                                  concurrency=args.concurrency,
                                  queue_limit=args.queue_limit,
                                  **service_kwargs)
        report = verdict["async"]
        failures = list(verdict["failures"])
        state = "IDENTICAL" if verdict["identical"] else "DIVERGED"
        print(f"cross-check sync vs async ({args.shards} shards): {state}")
    elif args.url is not None:
        report = run_workload(args.url, workload,
                              concurrency=args.concurrency)
        if not args.no_check:
            failures = check_equivalence(workload, report)
    else:
        mode = "self-serve"
        from repro.serve.embedded import EmbeddedAsyncServer

        with EmbeddedAsyncServer(shards=args.shards,
                                 queue_limit=args.queue_limit,
                                 **service_kwargs) as server:
            report = run_workload(server.base_url, workload,
                                  concurrency=args.concurrency)
        if not args.no_check:
            failures = check_equivalence(workload, report)
    print(render_trend(report))
    if args.out is not None:
        write_bench_serve(report, args.out, tag=args.tag,
                          extra={"mode": mode, "shards": args.shards,
                                 "preset": args.preset})
        print(f"artifact written to {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _run_closure(args) -> int:
    import json

    from repro.experiments.circuits import resolve_circuit_spec
    from repro.netlist.generator import generate_circuit
    from repro.pipeline import ClosureConfig, available_orderings, run_closure
    from repro.pipeline.ordering import ORDERING_POLICIES
    from repro.resilience.errors import MerlinInputError

    if args.list_orders:
        for name in available_orderings():
            print(f"{name:16s} {ORDERING_POLICIES[name].describe}")
        return 0
    if args.netlist_file is not None:
        from repro.netlist.io import netlist_from_dict

        try:
            with open(args.netlist_file, "r", encoding="utf-8") as handle:
                netlist = netlist_from_dict(json.load(handle))
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load netlist {args.netlist_file!r}: "
                  f"{exc}", file=sys.stderr)
            return 2
    else:
        try:
            spec = resolve_circuit_spec(args.circuit, args.seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        netlist = generate_circuit(spec)

    presets = {
        "fast": MerlinConfig.fast_preset,
        "test": MerlinConfig.test_preset,
        "paper": MerlinConfig.paper_preset,
    }
    config = presets[args.preset]()
    if args.backend is not None:
        config = config.with_(backend=args.backend)
    workers = _resolve_cli_workers(args.workers, config)
    if args.journal is not None and args.resume is not None:
        print("error: --journal and --resume are mutually exclusive "
              "(--resume reuses and extends its own journal)",
              file=sys.stderr)
        return 2
    journal_path = args.resume if args.resume is not None else args.journal
    try:
        closure = ClosureConfig(
            order=args.order,
            min_sinks=args.min_sinks,
            target_scale=args.target_scale,
            batch_size=args.batch,
            max_iterations=args.max_iterations,
        )
        result = run_closure(netlist, config=config, closure=closure,
                             workers=workers, journal_path=journal_path,
                             resume=args.resume is not None)
    except MerlinInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"circuit {result.circuit}: {len(netlist.gates)} gates, "
          f"{result.nets_optimized} nets optimized, policy "
          f"{result.policy}")
    print(f"estimate {result.estimate_delay:9.1f} ps  ->  target "
          f"{result.target:9.1f} ps")
    for it in result.iterations:
        note = "  (rolled back)" if it.rolled_back else ""
        print(f"iter {it.index}: {len(it.selected)}/{it.candidates} nets  "
              f"delay={it.critical_delay:9.1f} ps  "
              f"slack={it.worst_slack:+9.1f} ps  "
              f"cache_hits={it.cache_hits}  wall={it.wall_s:6.2f} s{note}")
    status = "converged" if result.converged else "iteration cap hit"
    print(f"{status} after {result.iterations_to_converge} iterations: "
          f"delay {result.critical_delay:.1f} ps, worst slack "
          f"{result.worst_slack:+.1f} ps, buffer area "
          f"{result.buffer_area:.1f} um^2 "
          f"({len(result.degraded_nets)} degraded nets)")
    return 0


def _run_ablation(args) -> int:
    from repro.experiments import ablations
    from repro.experiments.nets import make_experiment_net

    net = make_experiment_net(f"ablation_s{args.seed}", args.sinks, args.seed)
    runners = {
        "candidates": (ablations.candidate_ablation,
                       "E3: candidate-location strategy"),
        "orders": (ablations.initial_order_ablation,
                   "E4: initial-order sensitivity"),
        "alpha": (ablations.alpha_ablation, "E5: alpha sweep"),
        "bubbling": (ablations.bubbling_ablation,
                     "bubbling vs fixed order"),
        "convergence": (ablations.convergence_trace,
                        "E7: MERLIN cost trace"),
        "curves": (ablations.curve_size_profile,
                   "E8: curve size vs quantization"),
    }
    runner, title = runners[args.which]
    rows = runner(net)
    print(ablations.format_ablation(rows, title))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
