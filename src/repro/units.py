"""Unit conventions used throughout the library.

All physical quantities are plain floats in a single consistent unit system
chosen so that resistance times capacitance is directly a time:

==============  =========  =======================================
Quantity        Unit       Notes
==============  =========  =======================================
distance        micron     rectilinear (Manhattan) metric
capacitance     femtofarad sink loads, wire cap, buffer input caps
resistance      kiloohm    drive and wire resistance
time            picosecond kOhm * fF = ps exactly
area            um^2       buffer cell areas
==============  =========  =======================================

The module also provides the default 0.35um-process magnitudes used by the
synthetic technology (see :mod:`repro.tech.library`).  They are chosen so
that, per the paper's Table 1 setup, the interconnect delay across a net
bounding box is comparable to a gate delay.
"""

from __future__ import annotations

#: Tolerance of the quantized float comparators below.  1e-9 is far
#: below every physical quantum in this unit system (1e-9 um is a
#: nanometer's thousandth; curve buckets are ~1 fF / ~30 um^2), so the
#: comparators only ever merge values that differ by arithmetic noise.
FLOAT_EQ_TOL = 1e-9


def feq(a: float, b: float, tol: float = FLOAT_EQ_TOL) -> bool:
    """Quantized float equality: ``|a - b| <= tol``.

    Exact ``==`` between floats that went through arithmetic is banned
    in the engine packages (staticcheck rule ``NUM-FLOAT-EQ``); this is
    the sanctioned comparator.
    """
    return abs(a - b) <= tol


def fzero(x: float, tol: float = FLOAT_EQ_TOL) -> bool:
    """Quantized zero test: ``|x| <= tol`` (see :func:`feq`)."""
    return abs(x) <= tol


#: Wire sheet resistance per micron of routed length (kOhm/um).
#: 0.075 Ohm/um is typical for a 0.35um-process metal-3 wire.
DEFAULT_WIRE_RESISTANCE = 7.5e-5

#: Wire capacitance per micron of routed length (fF/um).
DEFAULT_WIRE_CAPACITANCE = 0.15

#: Default driver (net source) output resistance (kOhm).
DEFAULT_DRIVER_RESISTANCE = 2.0

#: Default driver intrinsic delay (ps).
DEFAULT_DRIVER_INTRINSIC = 60.0

#: Nominal input slew used by the four-parameter gate delay model (ps).
DEFAULT_NOMINAL_SLEW = 80.0

#: Characteristic bounding-box side (um) at which the Elmore delay of a
#: corner-to-corner wire roughly equals one mid-strength buffer delay.
#: Used by the synthetic net generator to size net bounding boxes.
GATE_EQUIVALENT_BOX_SIDE = 2000.0


def wire_delay_scale(resistance_per_um: float = DEFAULT_WIRE_RESISTANCE,
                     capacitance_per_um: float = DEFAULT_WIRE_CAPACITANCE) -> float:
    """Return the quadratic Elmore coefficient ``r*c/2`` in ps/um^2.

    The Elmore delay of an unbuffered wire of length ``L`` driving zero load
    is ``(r*c/2) * L**2``; this constant is handy for sizing synthetic
    workloads so wire delay matches gate delay, as the paper's experimental
    setup prescribes.
    """
    return 0.5 * resistance_per_um * capacitance_per_um
