"""Extension demo: simulated-annealing order search + tree analysis.

The paper notes that simulated annealing is the uphill-capable
generalization of its local neighborhood search.  This example runs both
outer loops on the same net, compares their results, and then uses the
analysis toolkit to inspect the winning tree: wirelength efficiency,
buffer-stage depths per sink (the Cα chain in action: less critical sinks
sit deeper), per-sink slack, and the final solution-curve geometry.
It finishes by writing an SVG rendering of the winning layout.

Run:  python examples/annealing_and_analysis.py [output.svg]
"""

import sys

from repro import MerlinConfig, default_technology, evaluate_tree, merlin
from repro.analysis import curve_stats, slack_profile, stage_depths, tree_metrics
from repro.core.annealing import annealed_merlin
from repro.experiments.nets import make_experiment_net
from repro.routing.svg import write_svg


def main() -> None:
    net = make_experiment_net("anneal_demo", 6, seed=21)
    tech = default_technology()
    config = MerlinConfig.test_preset().with_(max_iterations=4)

    greedy = merlin(net, tech, config=config)
    annealed = annealed_merlin(net, tech, config=config, iterations=6,
                               seed=3)

    print("outer-loop comparison (same inner engine):")
    print(f"  greedy descent : required time "
          f"{greedy.best.solution.required_time:9.1f} ps in "
          f"{greedy.iterations} loops")
    print(f"  annealed       : required time "
          f"{annealed.best.solution.required_time:9.1f} ps in "
          f"{annealed.iterations} proposals "
          f"({annealed.uphill_moves} uphill accepted)")

    winner = max((greedy.best, annealed.best),
                 key=lambda r: r.solution.required_time)
    tree = winner.tree
    evaluation = evaluate_tree(tree, tech)
    metrics = tree_metrics(tree, tech, evaluation)

    print("\nwinning tree analysis:")
    print(f"  wirelength / HPWL bound:  {metrics.wirelength_ratio:6.2f}")
    print(f"  max buffer-stage depth:   {metrics.max_stage_depth}")
    print(f"  buffers per sink:         {metrics.buffers_per_sink:6.2f}")
    print(f"  arrival skew:             {metrics.arrival_skew:6.1f} ps")

    print("\nper-sink stage depth and slack (deeper should be less "
          "critical):")
    depths = stage_depths(tree)
    slacks = slack_profile(tree, tech, evaluation)
    for index in sorted(depths):
        sink = net.sink(index)
        print(f"  {sink.name:16s} req={sink.required_time:7.1f} ps  "
              f"depth={depths[index]}  slack={slacks[index]:8.1f} ps")

    stats = curve_stats(winner.final_solutions)
    print(f"\nfinal curve: {stats.size} non-inferior solutions, "
          f"required-time span {stats.req_span:.1f} ps over "
          f"{stats.area_span:.1f} um^2 of area "
          f"({stats.req_per_area * 1000:.2f} ps per 1000 um^2)")

    output = sys.argv[1] if len(sys.argv) > 1 else "/tmp/merlin_tree.svg"
    write_svg(tree.simplified(), output)
    print(f"\nlayout written to {output}")


if __name__ == "__main__":
    main()
