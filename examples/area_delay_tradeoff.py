"""Explore the 3-D solution curve: required time vs total buffer area.

The paper's central data structure is the three-dimensional non-inferior
solution curve, which answers *both* problem variants from one DP run:

* variant I — maximize the driver required time under an area budget,
* variant II — minimize buffer area over a required-time floor.

This example runs BUBBLE_CONSTRUCT once, prints the final non-inferior
curve, then walks an area-budget sweep (variant I) and a required-time
floor sweep (variant II) *without re-running the optimizer* — selection is
just a scan over the final curve.

Run:  python examples/area_delay_tradeoff.py
"""

from repro import MerlinConfig, Objective, bubble_construct, default_technology
from repro.experiments.nets import make_experiment_net
from repro.orders.tsp import tsp_order


def main() -> None:
    net = make_experiment_net("tradeoff", 7, seed=5)
    tech = default_technology()
    result = bubble_construct(net, tsp_order(net), tech,
                              config=MerlinConfig())
    curve = sorted(result.final_solutions, key=lambda s: s.area)

    print(f"final non-inferior curve at the driver "
          f"({len(curve)} solutions):\n")
    print(f"{'buffer area (um^2)':>20s} {'required time (ps)':>20s} "
          f"{'driver load (fF)':>18s}")
    for solution in curve:
        print(f"{solution.area:20.1f} {solution.required_time:20.1f} "
              f"{solution.load:18.1f}")

    print("\nvariant I — max required time s.t. area budget:")
    budgets = [0.0] + [s.area for s in curve]
    for budget in sorted(set(budgets)):
        best = Objective.max_required_time(budget).select(curve)
        if best is not None:
            print(f"  budget {budget:8.1f} um^2 -> required time "
                  f"{best.required_time:9.1f} ps (area {best.area:.1f})")

    print("\nvariant II — min area s.t. required-time floor:")
    best_req = max(s.required_time for s in curve)
    for slack in (0.0, 25.0, 100.0, 400.0):
        floor = best_req - slack
        best = Objective.min_area(floor).select(curve)
        if best is not None:
            print(f"  floor {floor:9.1f} ps -> area {best.area:9.1f} um^2 "
                  f"(required time {best.required_time:.1f})")


if __name__ == "__main__":
    main()
