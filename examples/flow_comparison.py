"""Compare the paper's three experimental flows on one net.

Reproduces a single Table 1 row in miniature: Flow I (LTTREE fanout
optimization, then PTREE routing), Flow II (PTREE routing, then van
Ginneken buffer insertion), and Flow III (MERLIN's unified construction),
all under identical technology and evaluation.

Run:  python examples/flow_comparison.py [sinks] [seed]
"""

import sys

from repro import MerlinConfig, default_technology
from repro.baselines.flows import ALL_FLOWS, run_flow
from repro.experiments.nets import make_experiment_net

LABELS = {
    "flow1_lttree_ptree": "Flow I   (LTTREE -> PTREE)",
    "flow2_ptree_vg": "Flow II  (PTREE -> van Ginneken)",
    "flow3_merlin": "Flow III (MERLIN, unified)",
}


def main() -> None:
    sinks = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11
    net = make_experiment_net(f"demo_s{seed}", sinks, seed)
    tech = default_technology()
    config = MerlinConfig().with_(max_iterations=3)

    print(f"net with {sinks} sinks (seed {seed}), "
          f"box ~{net.bounding_box.half_perimeter:.0f} um half-perimeter\n")
    print(f"{'flow':35s} {'delay (ps)':>12s} {'buf area':>10s} "
          f"{'wire (um)':>10s} {'time (s)':>9s}  loops")
    baseline = None
    for flow in ALL_FLOWS:
        result = run_flow(flow, net, tech, config=config)
        if baseline is None:
            baseline = result.delay
        print(f"{LABELS[flow]:35s} {result.delay:12.1f} "
              f"{result.buffer_area:10.1f} "
              f"{result.evaluation.wire_length:10.0f} "
              f"{result.runtime_s:9.2f}  {result.loops}"
              f"   ({result.delay / baseline:.2f}x vs Flow I)")
    print("\nExpected shape (paper, Table 1): Flows II/III well below "
          "Flow I on delay;\nFlow III pays the largest runtime and "
          "converges in a handful of loops.")


if __name__ == "__main__":
    main()
