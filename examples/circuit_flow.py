"""Full-circuit optimization: the Table 2 pipeline on one synthetic chip.

Generates a seeded ISCAS-style netlist, places it, derives per-sink
required times from a pre-optimization STA, then optimizes every
multi-sink net with each of the three flows and reports post-layout
critical delay and area — one row of the paper's Table 2.

Run:  python examples/circuit_flow.py
"""

from repro import MerlinConfig, default_technology
from repro.baselines.flows import ALL_FLOWS
from repro.netlist.flow_runner import run_circuit_flow
from repro.netlist.generator import CircuitSpec, generate_circuit

LABELS = {
    "flow1_lttree_ptree": "Flow I  ",
    "flow2_ptree_vg": "Flow II ",
    "flow3_merlin": "Flow III",
}


def main() -> None:
    spec = CircuitSpec(
        name="demo_chip",
        primary_inputs=6,
        primary_outputs=5,
        logic_gates=24,
        levels=5,
        max_fanout=5,
        seed=42,
    )
    tech = default_technology()
    config = MerlinConfig.test_preset().with_(max_iterations=3)

    circuit = generate_circuit(spec)
    multi = sum(1 for n in circuit.nets if len(n.sinks) >= 2)
    print(f"circuit {spec.name}: {len(circuit.logic_gates)} gates, "
          f"{len(circuit.nets)} nets ({multi} multi-sink), "
          f"{len(circuit.primary_inputs)} PIs / "
          f"{len(circuit.primary_outputs)} POs\n")

    print(f"{'flow':10s} {'critical delay (ps)':>20s} "
          f"{'total area (um^2)':>18s} {'buffers (um^2)':>15s} "
          f"{'runtime (s)':>12s}")
    reference = None
    for flow in ALL_FLOWS:
        result = run_circuit_flow(generate_circuit(spec), flow, tech, config)
        if reference is None:
            reference = result.critical_delay
        print(f"{LABELS[flow]:10s} {result.critical_delay:20.1f} "
              f"{result.total_area:18.1f} {result.buffer_area:15.1f} "
              f"{result.runtime_s:12.2f}"
              f"   ({result.critical_delay / reference:.2f}x delay vs I)")

    print("\nExpected shape (paper, Table 2): MERLIN trades a little area "
          "for the best\ncircuit delay; the two sequential flows are "
          "roughly comparable to each other.")


if __name__ == "__main__":
    main()
