"""Quickstart: build one buffered routing tree with MERLIN.

Constructs a small net by hand, runs the full MERLIN optimization
(BUBBLE_CONSTRUCT + local neighborhood search), and prints the resulting
tree, its timing, and the convergence trace.

Run:  python examples/quickstart.py
"""

from repro import (
    MerlinConfig,
    Net,
    Point,
    Sink,
    default_technology,
    evaluate_tree,
    merlin,
)
from repro.routing.export import tree_to_dot


def main() -> None:
    # A net: one driver at the origin, five sinks with mapped-style loads
    # (fF) and required times (ps).
    net = Net(
        name="quickstart",
        source=Point(0.0, 0.0),
        sinks=(
            Sink("u1", Point(900.0, 300.0), load=12.0, required_time=900.0),
            Sink("u2", Point(1100.0, 500.0), load=8.0, required_time=950.0),
            Sink("u3", Point(300.0, 1200.0), load=20.0, required_time=880.0),
            Sink("u4", Point(1500.0, 1400.0), load=10.0, required_time=1000.0),
            Sink("u5", Point(700.0, 800.0), load=15.0, required_time=920.0),
        ),
    )

    # The synthetic 0.35um technology: 34 buffers, Elmore wires,
    # 4-parameter gate delays.
    tech = default_technology()

    # The default configuration balances quality and pure-Python runtime;
    # see MerlinConfig.paper_preset() for the paper's Table 1 knobs.
    result = merlin(net, tech, config=MerlinConfig())

    evaluation = evaluate_tree(result.tree, tech)
    print(f"net {net.name}: {len(net)} sinks")
    print(f"  MERLIN iterations (loops): {result.iterations} "
          f"(converged: {result.converged})")
    print(f"  required time at driver:   "
          f"{evaluation.required_time_at_driver:9.1f} ps")
    print(f"  critical delay:            {evaluation.delay:9.1f} ps")
    print(f"  inserted buffers:          {evaluation.buffer_count}")
    print(f"  total buffer area:         {evaluation.buffer_area:9.1f} um^2")
    print(f"  total wire length:         {evaluation.wire_length:9.1f} um")
    print()
    print("Graphviz DOT of the winning tree (paste into `dot -Tsvg`):")
    print(tree_to_dot(result.tree.simplified()))


if __name__ == "__main__":
    main()
